//! A small work-stealing thread pool on `std` primitives.
//!
//! crates.io is unreachable in this build environment, so instead of
//! `rayon` the engine ships its own pool: one FIFO deque per worker,
//! round-robin submission, and idle workers stealing from the *back* of
//! their siblings' deques. Jobs are `FnOnce` boxes and may themselves
//! submit further jobs — the enumeration frontier grows this way.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    /// One deque per worker; workers pop their own front, steal others'
    /// back.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Round-robin cursor for external submissions.
    next_queue: AtomicUsize,
    /// Signals "a job was queued" to sleeping workers.
    gate: Mutex<()>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    fn grab_job(&self, own: usize) -> Option<Job> {
        if let Some(job) = self.queues[own].lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.queues.len();
        for off in 1..n {
            if let Some(job) = self.queues[(own + off) % n].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        None
    }
}

/// A fixed-size work-stealing pool; dropping it joins all workers
/// (pending never-started jobs are discarded).
pub struct WorkPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkPool {
    /// A pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            next_queue: AtomicUsize::new(0),
            gate: Mutex::new(()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mintri-engine-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawning engine worker")
            })
            .collect();
        WorkPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Queues a job for execution.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let i = self.shared.next_queue.fetch_add(1, Ordering::Relaxed) % self.handles.len();
        self.shared.queues[i]
            .lock()
            .unwrap()
            .push_back(Box::new(job));
        // The lock round-trip orders the push before any worker's re-check.
        drop(self.shared.gate.lock().unwrap());
        self.shared.available.notify_all();
    }

    /// Runs every job and returns their results in input order, blocking
    /// the caller until the whole batch is done. The calling thread only
    /// waits (it is typically the lock-step driver, not a pool worker).
    pub fn run_batch<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        /// Decrements the latch on drop — panic-safe: a panicking job
        /// must still release the waiting driver, or the batch hangs.
        struct LatchGuard(Arc<(Mutex<usize>, Condvar)>);
        impl Drop for LatchGuard {
            fn drop(&mut self) {
                let (count, done) = &*self.0;
                if let Ok(mut remaining) = count.lock() {
                    *remaining -= 1;
                }
                done.notify_all();
            }
        }

        let results: Arc<Mutex<Vec<Option<T>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let latch = Arc::new((Mutex::new(n), Condvar::new()));
        for (i, job) in jobs.into_iter().enumerate() {
            let results = Arc::clone(&results);
            let latch = Arc::clone(&latch);
            self.submit(move || {
                let _guard = LatchGuard(latch);
                let out = job();
                results.lock().unwrap()[i] = Some(out);
            });
        }
        let (count, done) = &*latch;
        let mut remaining = count.lock().unwrap();
        while *remaining > 0 {
            remaining = done.wait(remaining).unwrap();
        }
        drop(remaining);
        // Workers may still hold Arc clones for a moment after the final
        // notify; every slot is filled, so take the vector out by value.
        // A `None` slot means that job panicked on its worker — propagate
        // the failure to the driver instead of hanging or lying.
        let taken = std::mem::take(&mut *results.lock().unwrap());
        taken
            .into_iter()
            .map(|r| r.expect("a batch job panicked on a pool worker"))
            .collect()
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        drop(self.shared.gate.lock().unwrap());
        self.shared.available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, own: usize) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(job) = shared.grab_job(own) {
            job();
            continue;
        }
        // Nothing anywhere: re-check under the gate, then sleep until a
        // submit or shutdown nudges us. `submit` pushes the job *before*
        // its gate round-trip + notify, so a job pushed concurrently with
        // this check is either seen here or wakes the wait — no lost
        // wakeups, no polling while the pool sits idle.
        let mut guard = shared.gate.lock().unwrap();
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if let Some(job) = shared.grab_job(own) {
                drop(guard);
                job();
                break;
            }
            guard = shared.available.wait(guard).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_preserves_input_order() {
        let pool = WorkPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = pool.run_batch(jobs);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_can_submit_jobs() {
        let pool = Arc::new(WorkPool::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        let latch = Arc::new((Mutex::new(8usize), Condvar::new()));
        for _ in 0..4 {
            let pool2 = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            let latch = Arc::clone(&latch);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let counter2 = Arc::clone(&counter);
                let latch2 = Arc::clone(&latch);
                pool2.submit(move || {
                    counter2.fetch_add(1, Ordering::SeqCst);
                    *latch2.0.lock().unwrap() -= 1;
                    latch2.1.notify_all();
                });
                *latch.0.lock().unwrap() -= 1;
                latch.1.notify_all();
            });
        }
        let (count, done) = &*latch;
        let mut remaining = count.lock().unwrap();
        while *remaining > 0 {
            remaining = done.wait(remaining).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    use std::time::Duration;

    #[test]
    fn drop_joins_cleanly_with_queued_work() {
        let pool = WorkPool::new(2);
        for _ in 0..100 {
            pool.submit(|| std::thread::sleep(Duration::from_micros(10)));
        }
        drop(pool); // must not hang or panic
    }
}

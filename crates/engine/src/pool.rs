//! A small work-stealing thread pool on `std` primitives.
//!
//! crates.io is unreachable in this build environment, so instead of
//! `rayon` the engine ships its own pool: resident workers driving the
//! shared striped-deque [`Scheduler`](crate::sched::Scheduler) (one FIFO
//! deque per worker, round-robin submission, idle workers stealing from
//! the *back* of their siblings' deques). Jobs are `FnOnce` boxes and may
//! themselves submit further jobs. The pool adds only batch semantics on
//! top: [`WorkPool::run_batch`] blocks the caller until a whole batch is
//! done and returns the results in input order — the shape the lock-step
//! deterministic driver needs.

use crate::sched::{Idle, Scheduler};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size work-stealing pool; dropping it joins all workers
/// (pending never-started jobs are discarded).
pub struct WorkPool {
    sched: Arc<Scheduler<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkPool {
    /// A pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let sched = Arc::new(Scheduler::new(threads.max(1)));
        let handles = (0..sched.stripes())
            .map(|i| {
                let sched = Arc::clone(&sched);
                std::thread::Builder::new()
                    .name(format!("mintri-engine-{i}"))
                    // Pure condvar park (no backoff): every job arrives
                    // through the scheduler's push, so the under-gate
                    // re-check covers all wake-up sources.
                    .spawn(move || sched.worker_loop(i, None, |job: Job| job(), || Idle::Park))
                    .expect("spawning engine worker")
            })
            .collect();
        WorkPool { sched, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Queues a job for execution.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.sched.push(Box::new(job));
    }

    /// Runs every job and returns their results in input order, blocking
    /// the caller until the whole batch is done. The calling thread only
    /// waits (it is typically the lock-step driver, not a pool worker).
    pub fn run_batch<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        /// Decrements the latch on drop — panic-safe: a panicking job
        /// must still release the waiting driver, or the batch hangs.
        struct LatchGuard(Arc<(Mutex<usize>, Condvar)>);
        impl Drop for LatchGuard {
            fn drop(&mut self) {
                let (count, done) = &*self.0;
                if let Ok(mut remaining) = count.lock() {
                    *remaining -= 1;
                }
                done.notify_all();
            }
        }

        let results: Arc<Mutex<Vec<Option<T>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let latch = Arc::new((Mutex::new(n), Condvar::new()));
        // One push_batch (single wake) rather than n submits: run_batch is
        // the deterministic driver's per-step hot path.
        let wrapped: Vec<Job> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| {
                let results = Arc::clone(&results);
                let latch = Arc::clone(&latch);
                Box::new(move || {
                    let _guard = LatchGuard(latch);
                    let out = job();
                    results.lock().unwrap()[i] = Some(out);
                }) as Job
            })
            .collect();
        self.sched.push_batch(wrapped);
        let (count, done) = &*latch;
        let mut remaining = count.lock().unwrap();
        while *remaining > 0 {
            remaining = done.wait(remaining).unwrap();
        }
        drop(remaining);
        // Workers may still hold Arc clones for a moment after the final
        // notify; every slot is filled, so take the vector out by value.
        // A `None` slot means that job panicked on its worker — propagate
        // the failure to the driver instead of hanging or lying.
        let taken = std::mem::take(&mut *results.lock().unwrap());
        taken
            .into_iter()
            .map(|r| r.expect("a batch job panicked on a pool worker"))
            .collect()
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        self.sched.request_shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn batch_preserves_input_order() {
        let pool = WorkPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = pool.run_batch(jobs);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_can_submit_jobs() {
        let pool = Arc::new(WorkPool::new(2));
        let counter = Arc::new(AtomicUsize::new(0));
        let latch = Arc::new((Mutex::new(8usize), Condvar::new()));
        for _ in 0..4 {
            let pool2 = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            let latch = Arc::clone(&latch);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let counter2 = Arc::clone(&counter);
                let latch2 = Arc::clone(&latch);
                pool2.submit(move || {
                    counter2.fetch_add(1, Ordering::SeqCst);
                    *latch2.0.lock().unwrap() -= 1;
                    latch2.1.notify_all();
                });
                *latch.0.lock().unwrap() -= 1;
                latch.1.notify_all();
            });
        }
        let (count, done) = &*latch;
        let mut remaining = count.lock().unwrap();
        while *remaining > 0 {
            remaining = done.wait(remaining).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    use std::time::Duration;

    #[test]
    fn drop_joins_cleanly_with_queued_work() {
        let pool = WorkPool::new(2);
        for _ in 0..100 {
            pool.submit(|| std::thread::sleep(Duration::from_micros(10)));
        }
        drop(pool); // must not hang or panic
    }
}

//! The engine's metric surface: every [`Engine`](crate::Engine) owns a
//! [`Registry`] and registers its session/replay/plan counters there at
//! construction time, so serving layers can merge their own per-endpoint
//! metrics into the same registry and render one Prometheus document.
//!
//! All handles are `Arc`s resolved once — the engine's hot paths bump
//! atomics and never touch the registry lock (the workspace invariant:
//! telemetry is write-only from hot paths).

use mintri_telemetry::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// The engine's registered metric handles. Created by
/// [`Engine::with_config`](crate::Engine::with_config); read them back
/// through [`Engine::telemetry`](crate::Engine::telemetry) or rendered
/// via the shared [`EngineTelemetry::registry`].
pub struct EngineTelemetry {
    registry: Arc<Registry>,
    /// Cold session builds (graph + backend pairs constructed).
    pub sessions_built: Arc<Counter>,
    /// Sessions dropped: LRU pressure, explicit eviction, or clears.
    pub sessions_evicted: Arc<Counter>,
    /// Live warm sessions right now.
    pub sessions_live: Arc<Gauge>,
    /// Streams served from a completed-answer replay (zero `Extend`s).
    pub replay_hits: Arc<Counter>,
    /// Streams that had to run live (no compatible cached answer list).
    pub replay_misses: Arc<Counter>,
    /// Best-k queries routed through the ranked gear.
    pub ranked_queries: Arc<Counter>,
    /// Raw results pulled by ranked frontiers (the ranked analogue of a
    /// scan length; divide by `ranked_queries` for the mean expansion
    /// count per query).
    pub ranked_expansions: Arc<Counter>,
    /// Delay from ranked-stream creation to its first emitted result (µs).
    pub ranked_first_result_us: Arc<Histogram>,
    /// Atom decompositions computed.
    pub plans_computed: Arc<Counter>,
    /// Queries served a memoized plan.
    pub plan_cache_hits: Arc<Counter>,
    /// Streams or plans hydrated from the persistent store (disk hits).
    pub store_hits: Arc<Counter>,
    /// Store lookups that found no usable entry (absent, corrupt, or a
    /// graph-equality mismatch under a colliding fingerprint).
    pub store_misses: Arc<Counter>,
    /// Answer caches spilled to the store (deposits on completed runs
    /// plus eviction-time spills).
    pub store_spills: Arc<Counter>,
    /// Bytes the persistent store currently holds, mirrored by
    /// [`Engine::refresh_gauges`](crate::Engine::refresh_gauges).
    pub store_bytes: Arc<Gauge>,
    /// Entry files the persistent store currently holds (same mirror).
    pub store_entries: Arc<Gauge>,
    /// Wall time to hydrate one entry from disk — read, verify,
    /// re-intern (µs).
    pub store_hydrate_us: Arc<Histogram>,
    /// Wall time to build one cold session (µs).
    pub session_build_us: Arc<Histogram>,
    /// Wall time from stream creation to its drop — replay or live (µs).
    pub stream_wall_us: Arc<Histogram>,
    /// `MsGraph` memo mirrors, refreshed by
    /// [`Engine::refresh_gauges`](crate::Engine::refresh_gauges): the
    /// summed `extends` / crossing counters of every live session.
    pub memo_extends: Arc<Gauge>,
    /// Crossing tests computed (memo misses), summed over live sessions.
    pub memo_crossing_computed: Arc<Gauge>,
    /// Crossing tests answered from the memo, summed over live sessions.
    pub memo_crossing_cached: Arc<Gauge>,
    /// Distinct separators interned, summed over live sessions.
    pub memo_separators_interned: Arc<Gauge>,
    /// Stream observations folded into the cost-profile layer.
    pub profile_runs_recorded: Arc<Counter>,
    /// Cost-profile snapshots written to the persistent store.
    pub profile_persists: Arc<Counter>,
    /// Cost profiles warmed from a persisted snapshot.
    pub profile_hydrates: Arc<Counter>,
    /// Distinct `(atom, backend)` cost profiles held in RAM.
    pub profile_entries: Arc<Gauge>,
    /// Auto-policy dispatches where the profile moved the thread pool
    /// off the default (last) atom.
    pub auto_pool_overrides: Arc<Counter>,
    /// Auto-policy dispatches demoted to sequential by a cheap
    /// predicted wall.
    pub auto_sequential_demotions: Arc<Counter>,
}

impl EngineTelemetry {
    /// Registers the engine family in `registry` and resolves the
    /// handles.
    pub fn new(registry: Arc<Registry>) -> Self {
        let c = |name: &str, help: &str| registry.counter(name, help);
        let g = |name: &str, help: &str| registry.gauge(name, help);
        let h = |name: &str, help: &str| registry.histogram(name, help);
        EngineTelemetry {
            sessions_built: c(
                "mintri_engine_sessions_built_total",
                "Cold graph-session builds",
            ),
            sessions_evicted: c(
                "mintri_engine_sessions_evicted_total",
                "Warm sessions dropped (LRU pressure, eviction or clears)",
            ),
            sessions_live: g("mintri_engine_sessions_live", "Live warm sessions"),
            replay_hits: c(
                "mintri_engine_replay_hits_total",
                "Streams served from a completed-answer replay",
            ),
            replay_misses: c(
                "mintri_engine_replay_misses_total",
                "Streams that ran a live enumeration",
            ),
            ranked_queries: c(
                "mintri_engine_ranked_queries_total",
                "Best-k queries routed through the ranked gear",
            ),
            ranked_expansions: c(
                "mintri_engine_ranked_expansions_total",
                "Raw results pulled by ranked frontiers",
            ),
            ranked_first_result_us: h(
                "mintri_engine_ranked_first_result_microseconds",
                "Delay from ranked-stream creation to its first result",
            ),
            plans_computed: c(
                "mintri_engine_plans_computed_total",
                "Atom decompositions computed",
            ),
            plan_cache_hits: c(
                "mintri_engine_plan_cache_hits_total",
                "Queries served a memoized plan",
            ),
            store_hits: c(
                "mintri_store_hits_total",
                "Streams or plans hydrated from the persistent store",
            ),
            store_misses: c(
                "mintri_store_misses_total",
                "Store lookups that found no usable entry",
            ),
            store_spills: c(
                "mintri_store_spills_total",
                "Answer caches spilled to the persistent store",
            ),
            store_bytes: g("mintri_store_bytes", "Bytes held by the persistent store"),
            store_entries: g(
                "mintri_store_entries",
                "Entry files held by the persistent store",
            ),
            store_hydrate_us: h(
                "mintri_store_hydrate_microseconds",
                "Wall time to hydrate one store entry (read, verify, re-intern)",
            ),
            session_build_us: h(
                "mintri_engine_session_build_microseconds",
                "Wall time to build a cold session",
            ),
            stream_wall_us: h(
                "mintri_engine_stream_wall_microseconds",
                "Stream lifetime, creation to drop",
            ),
            memo_extends: g(
                "mintri_engine_memo_extends",
                "Extend calls, summed over live sessions",
            ),
            memo_crossing_computed: g(
                "mintri_engine_memo_crossing_computed",
                "Crossing tests computed, summed over live sessions",
            ),
            memo_crossing_cached: g(
                "mintri_engine_memo_crossing_cached",
                "Crossing tests served from the memo, summed over live sessions",
            ),
            memo_separators_interned: g(
                "mintri_engine_memo_separators_interned",
                "Distinct separators interned, summed over live sessions",
            ),
            profile_runs_recorded: c(
                "mintri_engine_profile_runs_total",
                "Stream observations folded into the cost-profile layer",
            ),
            profile_persists: c(
                "mintri_engine_profile_persists_total",
                "Cost-profile snapshots written to the persistent store",
            ),
            profile_hydrates: c(
                "mintri_engine_profile_hydrates_total",
                "Cost profiles warmed from a persisted snapshot",
            ),
            profile_entries: g(
                "mintri_engine_profile_entries",
                "Distinct (atom, backend) cost profiles held in RAM",
            ),
            auto_pool_overrides: c(
                "mintri_engine_auto_pool_overrides_total",
                "Auto dispatches that moved the thread pool off the last atom",
            ),
            auto_sequential_demotions: c(
                "mintri_engine_auto_sequential_demotions_total",
                "Auto dispatches demoted to sequential by a cheap predicted wall",
            ),
            registry,
        }
    }

    /// The registry these metrics live in. Serving layers register their
    /// per-endpoint metrics here too, so one render covers the stack.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

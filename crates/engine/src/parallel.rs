//! The parallel `EnumMIS` frontier.
//!
//! `EnumMIS` (Figure 1 of the paper) is embarrassingly parallel at the
//! frontier: every queued answer `J` must be extended *in the direction
//! of* every generated SGR node `v`, and each `(J, v)` pair is an
//! independent unit of work against a shared, internally synchronized
//! [`MsGraph`]. The engine materializes exactly that pair set:
//!
//! * **Unordered delivery** — dedicated worker threads drive the shared
//!   striped-deque [`Scheduler`] over `(answer, node)` tasks. A finished
//!   task's new answer is admitted through a sharded seen-set, paired
//!   with every known node under a registry lock (so each pair is
//!   created exactly once), and streamed to the consumer over a bounded
//!   channel. Idle workers pull fresh separators from the (mutex-guarded)
//!   Berry–Bordat–Cogis cursor. Fastest; answer *order* varies run to
//!   run, the answer *set* never.
//! * **Deterministic delivery** — drives the *same*
//!   [`Frontier`](mintri_sgr::Frontier) state machine as the sequential
//!   iterator, fanning each drained batch of independent `Extend` calls
//!   over a [`WorkPool`] and absorbing the results in batch order.
//!   Because the schedule lives in one place and `Extend`/the edge
//!   oracle are pure functions of the input graph, the emitted stream is
//!   *identical* to [`mintri_core::MinimalTriangulationsEnumerator`]'s —
//!   the mode tests and golden files rely on this, and
//!   [`ParallelEnumerator::enum_stats`] exposes counter-level parity.
//!
//! Termination (Unordered): an `active` counter tracks queued-or-running
//! tasks. When it hits zero and the separator cursor is exhausted, the
//! closure is complete — exactly the condition under which the sequential
//! loop's queue runs dry with no nodes left to pull.

use crate::pool::WorkPool;
use crate::sched::{Backoff, Idle, Scheduler};
use crate::{Delivery, EngineConfig};
use mintri_core::{MsGraph, MsGraphStats, SepId};
use mintri_graph::{FxHashSet, Graph};
use mintri_separators::MinSepState;
use mintri_sgr::{EnumMisStats, EvalScratch, ExtendPair, Frontier, PrintMode, Sgr};
use mintri_triangulate::{McsM, Triangulation, Triangulator};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Stripes of the concurrent seen-set (answer deduplication).
const SEEN_SHARDS: usize = 16;

/// A unit of frontier work: extend `answers[0]` in the direction of
/// `nodes[1]`. `BOOTSTRAP` is the initial `Extend(∅)` call.
type Task = (u32, u32);
const BOOTSTRAP: Task = (u32::MAX, u32::MAX);

/// The per-worker evaluation workspace every driver threads through the
/// shared `MsGraph`'s scratch kernel.
type Workspace = EvalScratch<Arc<MsGraph<'static>>>;

/// One deterministic-driver pool job: evaluate a contiguous chunk of
/// `ExtendPair`s, yielding each pair's produced answer (or `None`).
type ChunkJob = Box<dyn FnOnce() -> Vec<Option<Vec<SepId>>> + Send>;

/// Streaming iterator over all minimal triangulations of a graph,
/// computed by a pool of work-stealing threads sharing one memoized
/// [`MsGraph`].
///
/// Yields each minimal triangulation exactly once. Dropping the iterator
/// aborts the enumeration and joins the workers. See [`Delivery`] for the
/// ordering contract of the two modes.
///
/// ```
/// use mintri_engine::ParallelEnumerator;
/// use mintri_graph::Graph;
///
/// let g = Graph::cycle(6);
/// // C6 has Catalan(4) = 14 minimal triangulations
/// assert_eq!(ParallelEnumerator::new(&g, 4).count(), 14);
/// ```
pub struct ParallelEnumerator {
    ms: Arc<MsGraph<'static>>,
    inner: Inner,
}

enum Inner {
    Unordered(UnorderedStream),
    Deterministic(Box<DeterministicDriver>),
}

impl ParallelEnumerator {
    /// Unordered enumeration of `g` over `threads` workers with the
    /// default (MCS-M) backend. Clones the graph once.
    pub fn new(g: &Graph, threads: usize) -> Self {
        Self::with_config(
            g,
            Box::new(McsM),
            &EngineConfig {
                threads,
                ..EngineConfig::default()
            },
        )
    }

    /// Full configuration over a borrowed graph (cloned once), with the
    /// default (`UponGeneration`) print discipline.
    pub fn with_config(
        g: &Graph,
        triangulator: Box<dyn Triangulator>,
        config: &EngineConfig,
    ) -> Self {
        Self::with_config_and_mode(g, triangulator, config, PrintMode::UponGeneration)
    }

    /// [`ParallelEnumerator::with_config`] plus an explicit print mode.
    /// `Deterministic` delivery honors it exactly like the sequential
    /// enumerator (`UponPop` = `EnumMISHold` order); `Unordered` delivery
    /// ignores it — emission there is discovery order by construction.
    pub fn with_config_and_mode(
        g: &Graph,
        triangulator: Box<dyn Triangulator>,
        config: &EngineConfig,
        mode: PrintMode,
    ) -> Self {
        Self::from_msgraph_with_mode(
            Arc::new(MsGraph::shared(Arc::new(g.clone()), triangulator)),
            config,
            mode,
        )
    }

    /// Runs over an existing (possibly already warm) shared [`MsGraph`] —
    /// the entry point the session layer uses so repeated queries reuse
    /// interned separators and memoized crossing tests.
    pub fn from_msgraph(ms: Arc<MsGraph<'static>>, config: &EngineConfig) -> Self {
        Self::from_msgraph_with_mode(ms, config, PrintMode::UponGeneration)
    }

    /// [`ParallelEnumerator::from_msgraph`] plus an explicit print mode
    /// (see [`ParallelEnumerator::with_config_and_mode`]).
    pub fn from_msgraph_with_mode(
        ms: Arc<MsGraph<'static>>,
        config: &EngineConfig,
        mode: PrintMode,
    ) -> Self {
        let inner =
            match config.delivery {
                Delivery::Unordered => {
                    Inner::Unordered(UnorderedStream::launch(Arc::clone(&ms), config))
                }
                Delivery::Deterministic => Inner::Deterministic(Box::new(
                    DeterministicDriver::new(Arc::clone(&ms), config, mode),
                )),
            };
        ParallelEnumerator { ms, inner }
    }

    /// The shared `MSGraph` driving this run.
    pub fn msgraph(&self) -> &Arc<MsGraph<'static>> {
        &self.ms
    }

    /// Memo-table counters of the underlying `MSGraph`.
    pub fn msgraph_stats(&self) -> MsGraphStats {
        self.ms.stats()
    }

    /// `EnumMIS`-level counters of this run, for `Deterministic` delivery
    /// (which replays the sequential schedule and therefore matches the
    /// sequential iterator's counters exactly). `None` in `Unordered`
    /// mode, whose relaxed schedule has no sequential counterpart.
    pub fn enum_stats(&self) -> Option<EnumMisStats> {
        match &self.inner {
            Inner::Unordered(_) => None,
            Inner::Deterministic(d) => Some(d.frontier.stats()),
        }
    }

    /// `true` once the stream ended because the enumeration genuinely
    /// finished (rather than the consumer stopping early).
    pub fn is_complete(&self) -> bool {
        match &self.inner {
            Inner::Unordered(s) => s.complete,
            Inner::Deterministic(d) => d.frontier.is_complete(),
        }
    }

    /// A thread-safe hook that aborts this run when called: unordered
    /// workers wind down (unblocking a consumer parked on the result
    /// channel), the deterministic driver stops at the next batch
    /// boundary. The stream then ends with
    /// [`ParallelEnumerator::is_complete`] still `false`. Used by the
    /// query layer's `CancelToken`; idempotent.
    pub fn abort_hook(&self) -> Box<dyn Fn() + Send + Sync + 'static> {
        match &self.inner {
            Inner::Unordered(s) => {
                let shared = Arc::clone(&s.shared);
                Box::new(move || shared.abort())
            }
            Inner::Deterministic(d) => {
                let stop = Arc::clone(&d.stop);
                Box::new(move || stop.store(true, Ordering::SeqCst))
            }
        }
    }

    /// Next answer as interned separator ids plus its materialized
    /// triangulation (the session layer records the ids for replay).
    pub fn next_pair(&mut self) -> Option<(Vec<SepId>, Triangulation)> {
        match &mut self.inner {
            Inner::Unordered(s) => s.next_pair(),
            Inner::Deterministic(d) => {
                let answer = d.next_answer()?;
                let tri = self.ms.materialize(&answer);
                Some((answer, tri))
            }
        }
    }
}

impl Iterator for ParallelEnumerator {
    type Item = Triangulation;

    fn next(&mut self) -> Option<Triangulation> {
        self.next_pair().map(|(_, tri)| tri)
    }
}

// ---------------------------------------------------------------------------
// Unordered mode
// ---------------------------------------------------------------------------

/// Answers admitted so far plus the generated SGR nodes. Guarded by one
/// `RwLock`: reads are per-task and cheap, writes happen once per *new*
/// answer or node and atomically create that item's `(answer, node)`
/// pairs — the lock is what guarantees each pair exists exactly once.
#[derive(Default)]
struct Registry {
    answers: Vec<Arc<Vec<SepId>>>,
    nodes: Vec<SepId>,
}

struct UnorderedShared {
    ms: Arc<MsGraph<'static>>,
    sched: Scheduler<Task>,
    seen: Vec<Mutex<FxHashSet<Vec<SepId>>>>,
    registry: RwLock<Registry>,
    /// The sequential separator source (`A_V`); `None` once exhausted.
    cursor: Mutex<Option<MinSepState>>,
    node_iter_done: AtomicBool,
    /// Tasks queued or running. 0 + exhausted cursor ⇒ enumeration done.
    active: AtomicUsize,
    /// Consumer went away (or an internal abort): wind down early.
    stop: AtomicBool,
    /// Set exactly once, when the full closure has been enumerated.
    finished: AtomicBool,
}

impl UnorderedShared {
    fn abort(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.sched.request_shutdown();
    }

    /// Deduplicates, registers and streams a freshly extended answer
    /// (left in the worker's result buffer), fanning out its
    /// `(answer, node)` tasks. Duplicate answers — the steady-state
    /// majority — are rejected without allocating.
    fn offer(&self, answer: &mut Vec<SepId>, tx: &SyncSender<(Vec<SepId>, Triangulation)>) {
        // Canonicalize like the frontier's offer does: dedup and the
        // binary_search in evaluate need sorted ids, and relying on
        // `extend`'s current sorted-output habit would couple the two
        // crates through an unchecked postcondition.
        answer.sort_unstable();
        let shard = mintri_core::memo::stripe_of(answer, SEEN_SHARDS);
        {
            let mut seen = self.seen[shard].lock().unwrap();
            if seen.contains(answer.as_slice()) {
                return;
            }
            seen.insert(answer.clone());
        }
        let tasks: Vec<Task> = {
            let mut reg = self.registry.write().unwrap();
            let a_idx = reg.answers.len() as u32;
            reg.answers.push(Arc::new(answer.clone()));
            (0..reg.nodes.len() as u32).map(|v| (a_idx, v)).collect()
        };
        self.active.fetch_add(tasks.len(), Ordering::SeqCst);
        self.sched.push_batch(tasks);
        if !self.stop.load(Ordering::SeqCst) {
            let tri = self.ms.materialize(answer);
            if tx.send((std::mem::take(answer), tri)).is_err() {
                // Receiver vanished without the usual drain-on-drop;
                // abort the run.
                self.abort();
            }
        }
    }

    fn run_task(
        &self,
        task: Task,
        tx: &SyncSender<(Vec<SepId>, Triangulation)>,
        ws: &mut Workspace,
    ) {
        // Task accounting must run even when stopping — and even if a
        // user-supplied Triangulator panics mid-Extend — or `active`
        // sticks above zero and the consumer hangs in recv() forever.
        let _token = TaskToken(self);
        if self.stop.load(Ordering::SeqCst) {
            return;
        }
        if task == BOOTSTRAP {
            self.ms.extend_with(&[], &mut ws.out, &mut ws.sgr);
            self.offer(&mut ws.out, tx);
        } else {
            let (j, v) = {
                let reg = self.registry.read().unwrap();
                (
                    Arc::clone(&reg.answers[task.0 as usize]),
                    reg.nodes[task.1 as usize],
                )
            };
            // Same evaluation the sequential frontier runs inline —
            // `false` when `v ∈ J` made the extension a no-op. Runs
            // through the worker's own workspace, so a steady-state task
            // allocates only when its answer is genuinely new.
            let pair = ExtendPair {
                answer: j,
                direction: Some(v),
            };
            if pair.evaluate_with(&self.ms, ws) {
                self.offer(&mut ws.out, tx);
            }
        }
    }

    /// Pulls one separator from the cursor and pairs it with every known
    /// answer. Returns `false` when the cursor is exhausted (or being
    /// exhausted by someone else) and the caller should idle.
    fn try_pull_node(&self) -> bool {
        if self.node_iter_done.load(Ordering::SeqCst) {
            return false;
        }
        let mut cur = self.cursor.lock().unwrap();
        let Some(state) = cur.as_mut() else {
            return false;
        };
        match self.ms.next_node(state) {
            None => {
                *cur = None;
                self.node_iter_done.store(true, Ordering::SeqCst);
                drop(cur);
                if self.active.load(Ordering::SeqCst) == 0 {
                    self.finished.store(true, Ordering::SeqCst);
                    self.sched.request_shutdown();
                }
                true
            }
            Some(v) => {
                let tasks: Vec<Task> = {
                    let mut reg = self.registry.write().unwrap();
                    let v_idx = reg.nodes.len() as u32;
                    reg.nodes.push(v);
                    (0..reg.answers.len() as u32).map(|a| (a, v_idx)).collect()
                };
                // `active` must grow *before* the cursor lock is released:
                // a racing worker that exhausts the cursor right after us
                // checks `active` to declare completion, and must see
                // these tasks or they would be orphaned (lost answers).
                self.active.fetch_add(tasks.len(), Ordering::SeqCst);
                drop(cur);
                self.sched.push_batch(tasks);
                true
            }
        }
    }
}

/// Panic-safe task accounting: decrements `active` on drop and performs
/// the completion check. If the task unwound (a panicking user
/// triangulator), the run is marked aborted so the stream never claims
/// completeness over a partial answer set.
struct TaskToken<'a>(&'a UnorderedShared);

impl Drop for TaskToken<'_> {
    fn drop(&mut self) {
        let shared = self.0;
        if std::thread::panicking() {
            shared.abort();
        }
        if shared.active.fetch_sub(1, Ordering::SeqCst) == 1 {
            if shared.node_iter_done.load(Ordering::SeqCst) {
                shared.finished.store(true, Ordering::SeqCst);
                shared.sched.request_shutdown();
            } else {
                // Wake idlers to pull the next separator now that the
                // frontier has drained.
                shared.sched.wake_all();
            }
        }
    }
}

fn unordered_worker(
    shared: &UnorderedShared,
    own: usize,
    tx: SyncSender<(Vec<SepId>, Triangulation)>,
) {
    // The backoff timeout is the lost-wakeup net: the idle callback's
    // `try_pull_node` creates work through `push_batch` (which re-locks
    // the scheduler gate), so it cannot run inside the parked re-check —
    // see the sched module docs.
    const BACKOFF: Backoff = Backoff {
        min: Duration::from_micros(500),
        max: Duration::from_millis(50),
    };
    // Each worker owns one kernel workspace for its whole life — the
    // scratch buffers warm up over the first few tasks and are reused
    // for every extend/crossing call after that.
    let mut ws = Workspace::default();
    shared.sched.worker_loop(
        own,
        Some(BACKOFF),
        |task| shared.run_task(task, &tx, &mut ws),
        || {
            if shared.stop.load(Ordering::SeqCst) || shared.finished.load(Ordering::SeqCst) {
                Idle::Exit // dropping tx; the channel closes with the last worker
            } else if shared.try_pull_node() {
                Idle::Rescan
            } else {
                Idle::Park
            }
        },
    );
}

struct UnorderedStream {
    shared: Arc<UnorderedShared>,
    rx: Receiver<(Vec<SepId>, Triangulation)>,
    handles: Vec<JoinHandle<()>>,
    complete: bool,
}

impl UnorderedStream {
    fn launch(ms: Arc<MsGraph<'static>>, config: &EngineConfig) -> Self {
        let threads = config.resolved_threads();
        let (tx, rx) = std::sync::mpsc::sync_channel(config.channel_capacity.max(1));
        let shared = Arc::new(UnorderedShared {
            ms: Arc::clone(&ms),
            sched: Scheduler::new(threads),
            seen: (0..SEEN_SHARDS)
                .map(|_| Mutex::new(FxHashSet::default()))
                .collect(),
            registry: RwLock::new(Registry::default()),
            cursor: Mutex::new(Some(ms.start_nodes())),
            node_iter_done: AtomicBool::new(false),
            active: AtomicUsize::new(1), // the bootstrap task
            stop: AtomicBool::new(false),
            finished: AtomicBool::new(false),
        });
        shared.sched.push(BOOTSTRAP);
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("mintri-enum-{i}"))
                    .spawn(move || unordered_worker(&shared, i, tx))
                    .expect("spawning enumeration worker")
            })
            .collect();
        drop(tx); // workers hold the only senders
        UnorderedStream {
            shared,
            rx,
            handles,
            complete: false,
        }
    }

    fn next_pair(&mut self) -> Option<(Vec<SepId>, Triangulation)> {
        match self.rx.recv() {
            Ok(pair) => Some(pair),
            Err(_) => {
                // All workers exited; completion vs abort is recorded in
                // the flags.
                self.complete = self.shared.finished.load(Ordering::SeqCst)
                    && !self.shared.stop.load(Ordering::SeqCst);
                None
            }
        }
    }
}

impl Drop for UnorderedStream {
    fn drop(&mut self) {
        self.shared.abort();
        // Keep receiving until every sender is gone: a one-shot
        // non-blocking drain would race with workers re-blocking on the
        // bounded channel, leaving them parked in send() while join()
        // waits forever. recv() both unblocks them and detects the final
        // disconnect.
        while self.rx.recv().is_ok() {}
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic mode
// ---------------------------------------------------------------------------

/// Lock-step driver over the *shared* [`Frontier`] state machine: drain
/// the schedule's next batch of independent `Extend` calls, fan it over a
/// [`WorkPool`], absorb the results in batch order. There is no mirrored
/// queue/processed/seen state here — the frontier is the single source of
/// truth for the paper's schedule, which is what makes the emitted stream
/// identical to the sequential enumerator's in both print modes.
/// Pull-driven — no channel, no resident enumeration threads; work
/// happens inside `next_answer`.
struct DeterministicDriver {
    frontier: Frontier<Arc<MsGraph<'static>>>,
    pool: WorkPool,
    /// Worker count, mirrored from the config: batches are split into
    /// this many contiguous chunks so each steal amortizes its boxing
    /// and scratch checkout over many pairs.
    threads: usize,
    /// Pool of warm kernel workspaces, checked out per chunk job and
    /// returned afterwards — the pool's workers are shared across
    /// drivers, so workspaces cannot live on the worker threads
    /// themselves.
    scratches: Arc<Mutex<Vec<Workspace>>>,
    /// Workspace for batches evaluated inline on the driver thread.
    local: Workspace,
    /// External abort (the query layer's cancellation): checked between
    /// batches, so a cancel takes effect at the next emission boundary.
    stop: Arc<AtomicBool>,
}

impl DeterministicDriver {
    fn new(ms: Arc<MsGraph<'static>>, config: &EngineConfig, mode: PrintMode) -> Self {
        DeterministicDriver {
            frontier: Frontier::new(ms, mode),
            pool: WorkPool::new(config.resolved_threads()),
            threads: config.resolved_threads(),
            scratches: Arc::new(Mutex::new(Vec::new())),
            local: Workspace::default(),
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Evaluates one drained batch and absorbs its results in batch
    /// order. Small batches (or a single-thread pool) run inline through
    /// the driver's own workspace; larger ones are split into ≈`threads`
    /// contiguous, order-preserving chunks so each pool job evaluates
    /// many pairs against one checked-out workspace.
    fn evaluate_batch(&mut self, batch: Vec<ExtendPair<SepId>>) {
        if batch.len() < 2 || self.threads < 2 {
            let ms = Arc::clone(self.frontier.sgr());
            for pair in &batch {
                let produced = pair.evaluate_with(&ms, &mut self.local);
                self.frontier
                    .absorb_one(produced.then_some(&mut self.local.out));
            }
            return;
        }
        let chunk_len = batch.len().div_ceil(self.threads).max(1);
        let mut chunks: Vec<Vec<ExtendPair<SepId>>> = Vec::new();
        let mut rest = batch;
        while rest.len() > chunk_len {
            let tail = rest.split_off(chunk_len);
            chunks.push(std::mem::replace(&mut rest, tail));
        }
        chunks.push(rest);
        let jobs: Vec<ChunkJob> = chunks
            .into_iter()
            .map(|chunk| {
                let ms = Arc::clone(self.frontier.sgr());
                let scratches = Arc::clone(&self.scratches);
                Box::new(move || {
                    let mut ws = scratches.lock().unwrap().pop().unwrap_or_default();
                    let results = chunk
                        .iter()
                        .map(|pair| pair.evaluate_with(&ms, &mut ws).then(|| ws.out.clone()))
                        .collect();
                    scratches.lock().unwrap().push(ws);
                    results
                }) as ChunkJob
            })
            .collect();
        let results: Vec<Option<Vec<SepId>>> =
            self.pool.run_batch(jobs).into_iter().flatten().collect();
        self.frontier.absorb(results);
    }

    fn next_answer(&mut self) -> Option<Vec<SepId>> {
        while !self.frontier.has_emissions() && !self.frontier.is_complete() {
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            let batch = self.frontier.drain_pending();
            self.evaluate_batch(batch);
        }
        self.frontier.pop_emission()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_core::MinimalTriangulationsEnumerator;

    fn edges_of(stream: impl Iterator<Item = Triangulation>) -> Vec<Vec<(u32, u32)>> {
        stream.map(|t| t.graph.edges()).collect()
    }

    #[test]
    fn deterministic_mode_matches_sequential_order_exactly() {
        for g in [
            Graph::cycle(7),
            Graph::path(6),
            Graph::complete(4),
            Graph::from_edges(
                7,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 0),
                    (2, 4),
                    (4, 5),
                    (5, 6),
                    (6, 2),
                ],
            ),
        ] {
            let sequential = edges_of(MinimalTriangulationsEnumerator::new(&g));
            let parallel = edges_of(ParallelEnumerator::with_config(
                &g,
                Box::new(McsM),
                &EngineConfig {
                    threads: 4,
                    delivery: Delivery::Deterministic,
                    ..EngineConfig::default()
                },
            ));
            assert_eq!(sequential, parallel, "order must match on {g:?}");
        }
    }

    #[test]
    fn unordered_mode_yields_the_same_set() {
        let g = Graph::cycle(8);
        let mut sequential = edges_of(MinimalTriangulationsEnumerator::new(&g));
        sequential.sort();
        for threads in [1, 2, 4] {
            let mut parallel = edges_of(ParallelEnumerator::new(&g, threads));
            parallel.sort();
            assert_eq!(sequential, parallel, "set must match at {threads} threads");
        }
    }

    #[test]
    fn unordered_mode_reports_completion() {
        let g = Graph::cycle(6);
        let mut e = ParallelEnumerator::new(&g, 2);
        let mut n = 0;
        while e.next_pair().is_some() {
            n += 1;
        }
        assert_eq!(n, 14);
        assert!(e.is_complete());
    }

    #[test]
    fn early_drop_joins_workers_cleanly() {
        let g = Graph::cycle(9);
        let mut e = ParallelEnumerator::new(&g, 4);
        let _first = e.next().expect("at least one triangulation");
        drop(e); // must not hang
    }

    #[test]
    fn early_drop_with_tiny_channel_and_many_workers_does_not_deadlock() {
        // Regression: a one-shot drain in Drop raced with workers
        // re-blocking on the full bounded channel, deadlocking join().
        let g = Graph::cycle(10);
        for _ in 0..10 {
            let mut e = ParallelEnumerator::with_config(
                &g,
                Box::new(McsM),
                &EngineConfig {
                    threads: 8,
                    channel_capacity: 1,
                    ..EngineConfig::default()
                },
            );
            let _first = e.next().expect("at least one triangulation");
            drop(e);
        }
    }

    #[test]
    fn deterministic_mode_honors_upon_pop() {
        let g = Graph::cycle(7);
        let sequential = edges_of(MinimalTriangulationsEnumerator::with_config(
            &g,
            Box::new(McsM),
            PrintMode::UponPop,
        ));
        let parallel = edges_of(ParallelEnumerator::with_config_and_mode(
            &g,
            Box::new(McsM),
            &EngineConfig {
                threads: 3,
                delivery: Delivery::Deterministic,
                ..EngineConfig::default()
            },
            PrintMode::UponPop,
        ));
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn results_are_not_duplicated_under_contention() {
        let g = Graph::cycle(8);
        for _ in 0..5 {
            let all: Vec<_> = ParallelEnumerator::new(&g, 8)
                .map(|t| {
                    let mut e = t.graph.edges();
                    e.sort();
                    e
                })
                .collect();
            let mut dedup = all.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(all.len(), dedup.len(), "duplicate answer emitted");
        }
    }

    #[test]
    fn deterministic_stats_match_the_sequential_iterator() {
        let g = Graph::cycle(7);
        let mut seq = MinimalTriangulationsEnumerator::new(&g);
        let n_seq = seq.by_ref().count();
        let mut par = ParallelEnumerator::with_config(
            &g,
            Box::new(McsM),
            &EngineConfig {
                threads: 4,
                delivery: Delivery::Deterministic,
                ..EngineConfig::default()
            },
        );
        let n_par = par.by_ref().count();
        assert_eq!(n_seq, n_par);
        assert_eq!(seq.enum_stats(), par.enum_stats().unwrap());
    }
}

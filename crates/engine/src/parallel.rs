//! The parallel `EnumMIS` frontier.
//!
//! `EnumMIS` (Figure 1 of the paper) is embarrassingly parallel at the
//! frontier: every queued answer `J` must be extended *in the direction
//! of* every generated SGR node `v`, and each `(J, v)` pair is an
//! independent unit of work against a shared, internally synchronized
//! [`MsGraph`]. The engine materializes exactly that pair set:
//!
//! * **Unordered delivery** — dedicated worker threads own work-stealing
//!   deques of `(answer, node)` tasks. A finished task's new answer is
//!   admitted through a sharded seen-set, paired with every known node
//!   under a registry lock (so each pair is created exactly once), and
//!   streamed to the consumer over a bounded channel. Idle workers pull
//!   fresh separators from the (mutex-guarded) Berry–Bordat–Cogis cursor.
//!   Fastest; answer *order* varies run to run, the answer *set* never.
//! * **Deterministic delivery** — a lock-step driver replays the exact
//!   sequential schedule, but fans each "extend `J` toward every node"
//!   step out over a [`WorkPool`] batch and admits results in canonical
//!   direction order. Because `Extend` and the edge oracle are pure
//!   functions of the input graph, the emitted stream is *identical* to
//!   [`mintri_core::MinimalTriangulationsEnumerator`]'s — the mode tests
//!   and golden files rely on.
//!
//! Termination (Unordered): an `active` counter tracks queued-or-running
//! tasks. When it hits zero and the separator cursor is exhausted, the
//! closure is complete — exactly the condition under which the sequential
//! loop's queue runs dry with no nodes left to pull.

use crate::pool::WorkPool;
use crate::{Delivery, EngineConfig};
use mintri_core::{MsGraph, MsGraphStats, SepId};
use mintri_graph::{FxHashSet, Graph};
use mintri_separators::MinSepState;
use mintri_sgr::{PrintMode, Sgr};
use mintri_triangulate::{McsM, Triangulation, Triangulator};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Stripes of the concurrent seen-set (answer deduplication).
const SEEN_SHARDS: usize = 16;

/// A unit of frontier work: extend `answers[0]` in the direction of
/// `nodes[1]`. `BOOTSTRAP` is the initial `Extend(∅)` call.
type Task = (u32, u32);
const BOOTSTRAP: Task = (u32::MAX, u32::MAX);

/// Streaming iterator over all minimal triangulations of a graph,
/// computed by a pool of work-stealing threads sharing one memoized
/// [`MsGraph`].
///
/// Yields each minimal triangulation exactly once. Dropping the iterator
/// aborts the enumeration and joins the workers. See [`Delivery`] for the
/// ordering contract of the two modes.
///
/// ```
/// use mintri_engine::ParallelEnumerator;
/// use mintri_graph::Graph;
///
/// let g = Graph::cycle(6);
/// // C6 has Catalan(4) = 14 minimal triangulations
/// assert_eq!(ParallelEnumerator::new(&g, 4).count(), 14);
/// ```
pub struct ParallelEnumerator {
    ms: Arc<MsGraph<'static>>,
    inner: Inner,
}

enum Inner {
    Unordered(UnorderedStream),
    Deterministic(Box<DeterministicDriver>),
}

impl ParallelEnumerator {
    /// Unordered enumeration of `g` over `threads` workers with the
    /// default (MCS-M) backend. Clones the graph once.
    pub fn new(g: &Graph, threads: usize) -> Self {
        Self::with_config(
            g,
            Box::new(McsM),
            &EngineConfig {
                threads,
                ..EngineConfig::default()
            },
        )
    }

    /// Full configuration over a borrowed graph (cloned once), with the
    /// default (`UponGeneration`) print discipline.
    pub fn with_config(
        g: &Graph,
        triangulator: Box<dyn Triangulator>,
        config: &EngineConfig,
    ) -> Self {
        Self::with_config_and_mode(g, triangulator, config, PrintMode::UponGeneration)
    }

    /// [`ParallelEnumerator::with_config`] plus an explicit print mode.
    /// `Deterministic` delivery honors it exactly like the sequential
    /// enumerator (`UponPop` = `EnumMISHold` order); `Unordered` delivery
    /// ignores it — emission there is discovery order by construction.
    pub fn with_config_and_mode(
        g: &Graph,
        triangulator: Box<dyn Triangulator>,
        config: &EngineConfig,
        mode: PrintMode,
    ) -> Self {
        Self::from_msgraph_with_mode(
            Arc::new(MsGraph::shared(Arc::new(g.clone()), triangulator)),
            config,
            mode,
        )
    }

    /// Runs over an existing (possibly already warm) shared [`MsGraph`] —
    /// the entry point the session layer uses so repeated queries reuse
    /// interned separators and memoized crossing tests.
    pub fn from_msgraph(ms: Arc<MsGraph<'static>>, config: &EngineConfig) -> Self {
        Self::from_msgraph_with_mode(ms, config, PrintMode::UponGeneration)
    }

    /// [`ParallelEnumerator::from_msgraph`] plus an explicit print mode
    /// (see [`ParallelEnumerator::with_config_and_mode`]).
    pub fn from_msgraph_with_mode(
        ms: Arc<MsGraph<'static>>,
        config: &EngineConfig,
        mode: PrintMode,
    ) -> Self {
        let inner =
            match config.delivery {
                Delivery::Unordered => {
                    Inner::Unordered(UnorderedStream::launch(Arc::clone(&ms), config))
                }
                Delivery::Deterministic => Inner::Deterministic(Box::new(
                    DeterministicDriver::new(Arc::clone(&ms), config, mode),
                )),
            };
        ParallelEnumerator { ms, inner }
    }

    /// The shared `MSGraph` driving this run.
    pub fn msgraph(&self) -> &Arc<MsGraph<'static>> {
        &self.ms
    }

    /// Memo-table counters of the underlying `MSGraph`.
    pub fn msgraph_stats(&self) -> MsGraphStats {
        self.ms.stats()
    }

    /// `true` once the stream ended because the enumeration genuinely
    /// finished (rather than the consumer stopping early).
    pub fn is_complete(&self) -> bool {
        match &self.inner {
            Inner::Unordered(s) => s.complete,
            Inner::Deterministic(d) => d.complete,
        }
    }

    /// Next answer as interned separator ids plus its materialized
    /// triangulation (the session layer records the ids for replay).
    pub fn next_pair(&mut self) -> Option<(Vec<SepId>, Triangulation)> {
        match &mut self.inner {
            Inner::Unordered(s) => s.next_pair(),
            Inner::Deterministic(d) => {
                let answer = d.next_answer()?;
                let tri = self.ms.materialize(&answer);
                Some((answer, tri))
            }
        }
    }
}

impl Iterator for ParallelEnumerator {
    type Item = Triangulation;

    fn next(&mut self) -> Option<Triangulation> {
        self.next_pair().map(|(_, tri)| tri)
    }
}

// ---------------------------------------------------------------------------
// Unordered mode
// ---------------------------------------------------------------------------

/// Answers admitted so far plus the generated SGR nodes. Guarded by one
/// `RwLock`: reads are per-task and cheap, writes happen once per *new*
/// answer or node and atomically create that item's `(answer, node)`
/// pairs — the lock is what guarantees each pair exists exactly once.
#[derive(Default)]
struct Registry {
    answers: Vec<Arc<Vec<SepId>>>,
    nodes: Vec<SepId>,
}

struct UnorderedShared {
    ms: Arc<MsGraph<'static>>,
    queues: Vec<Mutex<VecDeque<Task>>>,
    next_queue: AtomicUsize,
    seen: Vec<Mutex<FxHashSet<Vec<SepId>>>>,
    registry: RwLock<Registry>,
    /// The sequential separator source (`A_V`); `None` once exhausted.
    cursor: Mutex<Option<MinSepState>>,
    node_iter_done: AtomicBool,
    /// Tasks queued or running. 0 + exhausted cursor ⇒ enumeration done.
    active: AtomicUsize,
    /// Consumer went away (or an internal abort): wind down early.
    stop: AtomicBool,
    /// Set exactly once, when the full closure has been enumerated.
    finished: AtomicBool,
    gate: Mutex<()>,
    signal: Condvar,
}

impl UnorderedShared {
    fn grab_task(&self, own: usize) -> Option<Task> {
        if let Some(t) = self.queues[own].lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.queues.len();
        for off in 1..n {
            if let Some(t) = self.queues[(own + off) % n].lock().unwrap().pop_back() {
                return Some(t);
            }
        }
        None
    }

    /// Queues `tasks`, having already added them to `active`.
    fn push_tasks(&self, tasks: Vec<Task>) {
        if tasks.is_empty() {
            return;
        }
        let n = self.queues.len();
        for t in tasks {
            let i = self.next_queue.fetch_add(1, Ordering::Relaxed) % n;
            self.queues[i].lock().unwrap().push_back(t);
        }
        drop(self.gate.lock().unwrap());
        self.signal.notify_all();
    }

    /// Deduplicates, registers and streams a freshly extended answer,
    /// fanning out its `(answer, node)` tasks.
    fn offer(&self, mut answer: Vec<SepId>, tx: &SyncSender<(Vec<SepId>, Triangulation)>) {
        // Canonicalize like `EnumMis::offer` does: dedup and the
        // binary_search in run_task need sorted ids, and relying on
        // `extend`'s current sorted-output habit would couple the two
        // crates through an unchecked postcondition.
        answer.sort_unstable();
        let shard = mintri_core::memo::stripe_of(&answer, SEEN_SHARDS);
        if !self.seen[shard].lock().unwrap().insert(answer.clone()) {
            return;
        }
        let tasks: Vec<Task> = {
            let mut reg = self.registry.write().unwrap();
            let a_idx = reg.answers.len() as u32;
            reg.answers.push(Arc::new(answer.clone()));
            (0..reg.nodes.len() as u32).map(|v| (a_idx, v)).collect()
        };
        self.active.fetch_add(tasks.len(), Ordering::SeqCst);
        self.push_tasks(tasks);
        if !self.stop.load(Ordering::SeqCst) {
            let tri = self.ms.materialize(&answer);
            if tx.send((answer, tri)).is_err() {
                // Receiver vanished without the usual drain-on-drop;
                // abort the run.
                self.stop.store(true, Ordering::SeqCst);
            }
        }
    }

    fn run_task(&self, task: Task, tx: &SyncSender<(Vec<SepId>, Triangulation)>) {
        // Task accounting must run even when stopping — and even if a
        // user-supplied Triangulator panics mid-Extend — or `active`
        // sticks above zero and the consumer hangs in recv() forever.
        let _token = TaskToken(self);
        if self.stop.load(Ordering::SeqCst) {
            return;
        }
        if task == BOOTSTRAP {
            let first = self.ms.extend(&[]);
            self.offer(first, tx);
        } else {
            let (j, v) = {
                let reg = self.registry.read().unwrap();
                (
                    Arc::clone(&reg.answers[task.0 as usize]),
                    reg.nodes[task.1 as usize],
                )
            };
            // v ∈ J ⇒ Jv = J, already seen: skip the Extend call.
            if j.binary_search(&v).is_err() {
                let mut jv = Vec::with_capacity(j.len() + 1);
                jv.push(v);
                for &u in j.iter() {
                    if !self.ms.edge(&v, &u) {
                        jv.push(u);
                    }
                }
                let k = self.ms.extend(&jv);
                self.offer(k, tx);
            }
        }
    }

    /// Pulls one separator from the cursor and pairs it with every known
    /// answer. Returns `false` when the cursor is exhausted (or being
    /// exhausted by someone else) and the caller should idle.
    fn try_pull_node(&self) -> bool {
        if self.node_iter_done.load(Ordering::SeqCst) {
            return false;
        }
        let mut cur = self.cursor.lock().unwrap();
        let Some(state) = cur.as_mut() else {
            return false;
        };
        match self.ms.next_node(state) {
            None => {
                *cur = None;
                self.node_iter_done.store(true, Ordering::SeqCst);
                drop(cur);
                if self.active.load(Ordering::SeqCst) == 0 {
                    self.finished.store(true, Ordering::SeqCst);
                    drop(self.gate.lock().unwrap());
                    self.signal.notify_all();
                }
                true
            }
            Some(v) => {
                let tasks: Vec<Task> = {
                    let mut reg = self.registry.write().unwrap();
                    let v_idx = reg.nodes.len() as u32;
                    reg.nodes.push(v);
                    (0..reg.answers.len() as u32).map(|a| (a, v_idx)).collect()
                };
                // `active` must grow *before* the cursor lock is released:
                // a racing worker that exhausts the cursor right after us
                // checks `active` to declare completion, and must see
                // these tasks or they would be orphaned (lost answers).
                self.active.fetch_add(tasks.len(), Ordering::SeqCst);
                drop(cur);
                self.push_tasks(tasks);
                true
            }
        }
    }
}

/// Panic-safe task accounting: decrements `active` on drop and performs
/// the completion check. If the task unwound (a panicking user
/// triangulator), the run is marked aborted so the stream never claims
/// completeness over a partial answer set.
struct TaskToken<'a>(&'a UnorderedShared);

impl Drop for TaskToken<'_> {
    fn drop(&mut self) {
        let shared = self.0;
        if std::thread::panicking() {
            shared.stop.store(true, Ordering::SeqCst);
        }
        if shared.active.fetch_sub(1, Ordering::SeqCst) == 1 {
            if shared.node_iter_done.load(Ordering::SeqCst) {
                shared.finished.store(true, Ordering::SeqCst);
            }
            // Wake idlers: either to observe completion or to pull the
            // next separator now that the frontier has drained.
            drop(shared.gate.lock());
            shared.signal.notify_all();
        }
    }
}

fn unordered_worker(
    shared: &UnorderedShared,
    own: usize,
    tx: SyncSender<(Vec<SepId>, Triangulation)>,
) {
    // Idle wait starts snappy and backs off exponentially, resetting on
    // any work. A pure predicate wait is not possible here: the idle
    // re-check includes `try_pull_node`, whose `push_tasks` re-locks the
    // gate — so the timeout stays as the lost-wakeup net, and backoff
    // keeps long-idle workers (slow consumer, drained frontier) from
    // polling at kHz rates.
    const IDLE_MIN: Duration = Duration::from_micros(500);
    const IDLE_MAX: Duration = Duration::from_millis(50);
    let mut idle_wait = IDLE_MIN;
    loop {
        if shared.stop.load(Ordering::SeqCst) || shared.finished.load(Ordering::SeqCst) {
            return; // dropping tx; the channel closes with the last worker
        }
        if let Some(task) = shared.grab_task(own) {
            shared.run_task(task, &tx);
            idle_wait = IDLE_MIN;
            continue;
        }
        if shared.try_pull_node() {
            idle_wait = IDLE_MIN;
            continue;
        }
        // No tasks, no nodes to pull: wait for frontier activity.
        let guard = shared.gate.lock().unwrap();
        let (_guard, timed_out) = shared
            .signal
            .wait_timeout(guard, idle_wait)
            .map(|(g, t)| (g, t.timed_out()))
            .unwrap();
        if timed_out {
            idle_wait = (idle_wait * 2).min(IDLE_MAX);
        } else {
            idle_wait = IDLE_MIN;
        }
    }
}

struct UnorderedStream {
    shared: Arc<UnorderedShared>,
    rx: Receiver<(Vec<SepId>, Triangulation)>,
    handles: Vec<JoinHandle<()>>,
    complete: bool,
}

impl UnorderedStream {
    fn launch(ms: Arc<MsGraph<'static>>, config: &EngineConfig) -> Self {
        let threads = config.resolved_threads();
        let (tx, rx) = std::sync::mpsc::sync_channel(config.channel_capacity.max(1));
        let shared = Arc::new(UnorderedShared {
            ms: Arc::clone(&ms),
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            next_queue: AtomicUsize::new(0),
            seen: (0..SEEN_SHARDS)
                .map(|_| Mutex::new(FxHashSet::default()))
                .collect(),
            registry: RwLock::new(Registry::default()),
            cursor: Mutex::new(Some(ms.start_nodes())),
            node_iter_done: AtomicBool::new(false),
            active: AtomicUsize::new(1), // the bootstrap task
            stop: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            gate: Mutex::new(()),
            signal: Condvar::new(),
        });
        shared.queues[0].lock().unwrap().push_back(BOOTSTRAP);
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("mintri-enum-{i}"))
                    .spawn(move || unordered_worker(&shared, i, tx))
                    .expect("spawning enumeration worker")
            })
            .collect();
        drop(tx); // workers hold the only senders
        UnorderedStream {
            shared,
            rx,
            handles,
            complete: false,
        }
    }

    fn next_pair(&mut self) -> Option<(Vec<SepId>, Triangulation)> {
        match self.rx.recv() {
            Ok(pair) => Some(pair),
            Err(_) => {
                // All workers exited; completion vs abort is recorded in
                // the flags.
                self.complete = self.shared.finished.load(Ordering::SeqCst)
                    && !self.shared.stop.load(Ordering::SeqCst);
                None
            }
        }
    }
}

impl Drop for UnorderedStream {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        drop(self.shared.gate.lock().unwrap());
        self.shared.signal.notify_all();
        // Keep receiving until every sender is gone: a one-shot
        // non-blocking drain would race with workers re-blocking on the
        // bounded channel, leaving them parked in send() while join()
        // waits forever. recv() both unblocks them and detects the final
        // disconnect.
        while self.rx.recv().is_ok() {}
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic mode
// ---------------------------------------------------------------------------

/// Lock-step frontier: replays the sequential `EnumMIS` schedule, batch-
/// parallelizing each step's independent `Extend` calls on a [`WorkPool`]
/// and admitting results in canonical order. Pull-driven — no channel, no
/// resident enumeration threads; work happens inside `next_answer`.
struct DeterministicDriver {
    ms: Arc<MsGraph<'static>>,
    pool: WorkPool,
    mode: PrintMode,
    cursor: Option<MinSepState>,
    nodes: Vec<SepId>,
    queue: VecDeque<Arc<Vec<SepId>>>,
    processed: Vec<Arc<Vec<SepId>>>,
    seen: FxHashSet<Vec<SepId>>,
    pending: VecDeque<Vec<SepId>>,
    started: bool,
    complete: bool,
}

impl DeterministicDriver {
    fn new(ms: Arc<MsGraph<'static>>, config: &EngineConfig, mode: PrintMode) -> Self {
        let cursor = Some(ms.start_nodes());
        DeterministicDriver {
            ms,
            pool: WorkPool::new(config.resolved_threads()),
            mode,
            cursor,
            nodes: Vec::new(),
            queue: VecDeque::new(),
            processed: Vec::new(),
            seen: FxHashSet::default(),
            pending: VecDeque::new(),
            started: false,
            complete: false,
        }
    }

    /// Registers a fresh answer; emits it now (`UponGeneration`) or when
    /// popped from the queue (`UponPop`) — same discipline split as the
    /// sequential `EnumMis`.
    fn offer(&mut self, mut answer: Vec<SepId>) {
        answer.sort_unstable(); // canonicalize exactly like EnumMis::offer
        if self.seen.insert(answer.clone()) {
            if self.mode == PrintMode::UponGeneration {
                self.pending.push_back(answer.clone());
            }
            self.queue.push_back(Arc::new(answer));
        }
    }

    /// Extends `j` toward each node of `directions`, in parallel; the
    /// result vector is in `directions` order, `None` where `v ∈ J` made
    /// the extension a no-op.
    fn batch_extend(&self, pairs: Vec<(Arc<Vec<SepId>>, SepId)>) -> Vec<Option<Vec<SepId>>> {
        let jobs: Vec<Box<dyn FnOnce() -> Option<Vec<SepId>> + Send>> = pairs
            .into_iter()
            .map(|(j, v)| {
                let ms = Arc::clone(&self.ms);
                Box::new(move || {
                    if j.binary_search(&v).is_ok() {
                        return None;
                    }
                    let mut jv = Vec::with_capacity(j.len() + 1);
                    jv.push(v);
                    for &u in j.iter() {
                        if !ms.edge(&v, &u) {
                            jv.push(u);
                        }
                    }
                    Some(ms.extend(&jv))
                }) as Box<dyn FnOnce() -> Option<Vec<SepId>> + Send>
            })
            .collect();
        self.pool.run_batch(jobs)
    }

    /// The sequential `advance` loop with its two inner loops batched.
    fn advance(&mut self) {
        if !self.started {
            self.started = true;
            let first = self.ms.extend(&[]);
            self.offer(first);
        }
        while self.pending.is_empty() {
            if let Some(j) = self.queue.pop_front() {
                if self.mode == PrintMode::UponPop {
                    self.pending.push_back((*j).clone());
                }
                self.processed.push(Arc::clone(&j));
                let pairs = self
                    .nodes
                    .iter()
                    .map(|&v| (Arc::clone(&j), v))
                    .collect::<Vec<_>>();
                for k in self.batch_extend(pairs).into_iter().flatten() {
                    self.offer(k);
                }
            } else {
                let Some(state) = self.cursor.as_mut() else {
                    self.complete = true;
                    return;
                };
                match self.ms.next_node(state) {
                    None => {
                        self.cursor = None;
                        self.complete = true;
                        return;
                    }
                    Some(v) => {
                        self.nodes.push(v);
                        let pairs = self
                            .processed
                            .iter()
                            .map(|j| (Arc::clone(j), v))
                            .collect::<Vec<_>>();
                        for k in self.batch_extend(pairs).into_iter().flatten() {
                            self.offer(k);
                        }
                    }
                }
            }
        }
    }

    fn next_answer(&mut self) -> Option<Vec<SepId>> {
        if self.pending.is_empty() && !self.complete {
            self.advance();
        }
        self.pending.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_core::MinimalTriangulationsEnumerator;

    fn edges_of(stream: impl Iterator<Item = Triangulation>) -> Vec<Vec<(u32, u32)>> {
        stream.map(|t| t.graph.edges()).collect()
    }

    #[test]
    fn deterministic_mode_matches_sequential_order_exactly() {
        for g in [
            Graph::cycle(7),
            Graph::path(6),
            Graph::complete(4),
            Graph::from_edges(
                7,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (3, 0),
                    (2, 4),
                    (4, 5),
                    (5, 6),
                    (6, 2),
                ],
            ),
        ] {
            let sequential = edges_of(MinimalTriangulationsEnumerator::new(&g));
            let parallel = edges_of(ParallelEnumerator::with_config(
                &g,
                Box::new(McsM),
                &EngineConfig {
                    threads: 4,
                    delivery: Delivery::Deterministic,
                    ..EngineConfig::default()
                },
            ));
            assert_eq!(sequential, parallel, "order must match on {g:?}");
        }
    }

    #[test]
    fn unordered_mode_yields_the_same_set() {
        let g = Graph::cycle(8);
        let mut sequential = edges_of(MinimalTriangulationsEnumerator::new(&g));
        sequential.sort();
        for threads in [1, 2, 4] {
            let mut parallel = edges_of(ParallelEnumerator::new(&g, threads));
            parallel.sort();
            assert_eq!(sequential, parallel, "set must match at {threads} threads");
        }
    }

    #[test]
    fn unordered_mode_reports_completion() {
        let g = Graph::cycle(6);
        let mut e = ParallelEnumerator::new(&g, 2);
        let mut n = 0;
        while e.next_pair().is_some() {
            n += 1;
        }
        assert_eq!(n, 14);
        assert!(e.is_complete());
    }

    #[test]
    fn early_drop_joins_workers_cleanly() {
        let g = Graph::cycle(9);
        let mut e = ParallelEnumerator::new(&g, 4);
        let _first = e.next().expect("at least one triangulation");
        drop(e); // must not hang
    }

    #[test]
    fn early_drop_with_tiny_channel_and_many_workers_does_not_deadlock() {
        // Regression: a one-shot drain in Drop raced with workers
        // re-blocking on the full bounded channel, deadlocking join().
        let g = Graph::cycle(10);
        for _ in 0..10 {
            let mut e = ParallelEnumerator::with_config(
                &g,
                Box::new(McsM),
                &EngineConfig {
                    threads: 8,
                    channel_capacity: 1,
                    ..EngineConfig::default()
                },
            );
            let _first = e.next().expect("at least one triangulation");
            drop(e);
        }
    }

    #[test]
    fn deterministic_mode_honors_upon_pop() {
        let g = Graph::cycle(7);
        let sequential = edges_of(MinimalTriangulationsEnumerator::with_config(
            &g,
            Box::new(McsM),
            PrintMode::UponPop,
        ));
        let parallel = edges_of(ParallelEnumerator::with_config_and_mode(
            &g,
            Box::new(McsM),
            &EngineConfig {
                threads: 3,
                delivery: Delivery::Deterministic,
                ..EngineConfig::default()
            },
            PrintMode::UponPop,
        ));
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn results_are_not_duplicated_under_contention() {
        let g = Graph::cycle(8);
        for _ in 0..5 {
            let all: Vec<_> = ParallelEnumerator::new(&g, 8)
                .map(|t| {
                    let mut e = t.graph.edges();
                    e.sort();
                    e
                })
                .collect();
            let mut dedup = all.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(all.len(), dedup.len(), "duplicate answer emitted");
        }
    }
}

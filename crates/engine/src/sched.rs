//! The one striped-deque scheduler of the workspace.
//!
//! Both engine execution substrates — the general-purpose [`WorkPool`]
//! (lock-step batches for the deterministic driver) and the unordered
//! enumeration frontier (resident workers interleaving task execution
//! with separator-pulling and termination accounting) — need the same
//! core: one FIFO deque per worker, round-robin submission, idle workers
//! stealing from the *back* of their siblings' deques, and a gate/condvar
//! handshake that makes "push, then wake" race-free. [`Scheduler`] is
//! that core, extracted so the two stay in sync; neither caller owns a
//! deque or a condvar of its own anymore.
//!
//! What stays with the caller is policy, injected into
//! [`Scheduler::worker_loop`] as two callbacks:
//!
//! * `run(task)` — execute one task (the pool runs a boxed job, the
//!   frontier runs an `(answer, node)` extension with its own panic-safe
//!   accounting);
//! * `idle()` — decide what an out-of-work worker does: exit (pool
//!   shutdown, frontier completion), find more work elsewhere and rescan
//!   (the frontier pulling a fresh separator from the `A_V` cursor), or
//!   park on the condvar.
//!
//! ## Lost-wakeup contract
//!
//! [`Scheduler::push`]/[`Scheduler::push_batch`] enqueue *before* a gate
//! round-trip + `notify_all`, and a parking worker re-checks the deques
//! *under* the gate — so a task pushed concurrently with the park is
//! either seen by that re-check or its notify lands after the worker
//! waits. Work that arrives through side channels the re-check cannot see
//! (the unordered frontier's "active count hit zero, go pull a node"
//! transition re-enters `push_batch`, which would re-lock the gate) is
//! covered by passing a [`Backoff`] — the timed wait is the safety net,
//! with exponential backoff so long-idle workers don't poll at kHz rates.
//!
//! [`WorkPool`]: crate::WorkPool

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What an out-of-work worker should do next; returned by the `idle`
/// callback of [`Scheduler::worker_loop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Idle {
    /// The callback may have created work (e.g. pulled a fresh SGR node
    /// and queued its tasks) — re-scan the deques immediately.
    Rescan,
    /// Nothing to do anywhere: park until a wake-up (or the backoff
    /// timeout, when one is configured).
    Park,
    /// This worker is done; leave the loop.
    Exit,
}

/// Exponential-backoff bounds for the parked wait of
/// [`Scheduler::worker_loop`]. `None` in the loop call means a pure
/// (untimed) condvar wait — only sound when every work source goes
/// through [`Scheduler::push`]/[`Scheduler::push_batch`] (see the module
/// docs).
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// First (and post-work reset) wait.
    pub min: Duration,
    /// Cap; each timed-out wait doubles up to this.
    pub max: Duration,
}

/// A striped work deque plus the wake-up machinery — see the module docs.
/// Parameterized over the task type; `(u32, u32)` frontier pairs and
/// boxed closures both ride on it.
pub struct Scheduler<T> {
    /// One deque per worker; workers pop their own front, steal others'
    /// back.
    queues: Vec<Mutex<VecDeque<T>>>,
    /// Round-robin cursor for submissions.
    next_queue: AtomicUsize,
    /// The push/park handshake (see module docs).
    gate: Mutex<()>,
    signal: Condvar,
    /// Makes every worker leave `worker_loop` at its next check.
    shutdown: AtomicBool,
}

impl<T> Scheduler<T> {
    /// A scheduler with `stripes` deques (at least one) — one per worker.
    pub fn new(stripes: usize) -> Self {
        Scheduler {
            queues: (0..stripes.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            next_queue: AtomicUsize::new(0),
            gate: Mutex::new(()),
            signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Number of stripes (= workers the scheduler is sized for).
    pub fn stripes(&self) -> usize {
        self.queues.len()
    }

    /// Queues one task (round-robin) and wakes parked workers.
    pub fn push(&self, task: T) {
        let i = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[i].lock().unwrap().push_back(task);
        self.wake_all();
    }

    /// Queues a batch of tasks (round-robin) with a single wake at the
    /// end. No-op on an empty batch.
    pub fn push_batch(&self, tasks: Vec<T>) {
        if tasks.is_empty() {
            return;
        }
        let n = self.queues.len();
        for t in tasks {
            let i = self.next_queue.fetch_add(1, Ordering::Relaxed) % n;
            self.queues[i].lock().unwrap().push_back(t);
        }
        self.wake_all();
    }

    /// Pops from `own`'s front, else steals from the back of a sibling.
    pub fn grab(&self, own: usize) -> Option<T> {
        if let Some(t) = self.queues[own].lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.queues.len();
        for off in 1..n {
            if let Some(t) = self.queues[(own + off) % n].lock().unwrap().pop_back() {
                return Some(t);
            }
        }
        None
    }

    /// Tells every worker to leave its loop at the next check and wakes
    /// the parked ones. Queued tasks are left in place (and discarded
    /// with the scheduler).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_all();
    }

    /// `true` once [`Scheduler::request_shutdown`] has been called.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Wakes every parked worker. The gate round-trip orders whatever the
    /// caller wrote before this call ahead of any worker's under-gate
    /// re-check — the push-then-wake contract of the module docs.
    pub fn wake_all(&self) {
        drop(self.gate.lock().unwrap());
        self.signal.notify_all();
    }

    /// Runs worker `own`'s loop on the calling thread until `idle`
    /// returns [`Idle::Exit`] or [`Scheduler::request_shutdown`] is
    /// observed: grab-and-run tasks while any exist, consult `idle` when
    /// out of work, park per `backoff` (see [`Backoff`]; `None` = pure
    /// condvar wait).
    pub fn worker_loop(
        &self,
        own: usize,
        backoff: Option<Backoff>,
        mut run: impl FnMut(T),
        mut idle: impl FnMut() -> Idle,
    ) {
        let mut wait = backoff.map(|b| b.min);
        loop {
            if self.is_shutdown() {
                return;
            }
            if let Some(task) = self.grab(own) {
                wait = backoff.map(|b| b.min);
                run(task);
                continue;
            }
            match idle() {
                Idle::Exit => return,
                Idle::Rescan => {
                    wait = backoff.map(|b| b.min);
                    continue;
                }
                Idle::Park => {
                    let guard = self.gate.lock().unwrap();
                    // Re-check under the gate: anything pushed before our
                    // lock is visible here; anything after will notify.
                    if self.is_shutdown() {
                        return;
                    }
                    if let Some(task) = self.grab(own) {
                        drop(guard);
                        wait = backoff.map(|b| b.min);
                        run(task);
                        continue;
                    }
                    match (backoff, wait) {
                        (Some(b), Some(w)) => {
                            let (_guard, timeout) = self.signal.wait_timeout(guard, w).unwrap();
                            wait = Some(if timeout.timed_out() {
                                (w * 2).min(b.max)
                            } else {
                                b.min
                            });
                        }
                        _ => {
                            let _guard = self.signal.wait(guard).unwrap();
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn tasks_round_robin_across_stripes() {
        let sched: Scheduler<usize> = Scheduler::new(3);
        sched.push_batch((0..9).collect());
        for q in 0..3 {
            let mut grabbed = Vec::new();
            while let Some(t) = sched.queues[q].lock().unwrap().pop_front() {
                grabbed.push(t);
            }
            assert_eq!(grabbed, vec![q, q + 3, q + 6]);
        }
    }

    #[test]
    fn grab_prefers_own_stripe_then_steals() {
        let sched: Scheduler<&'static str> = Scheduler::new(2);
        sched.queues[0].lock().unwrap().push_back("own");
        sched.queues[1].lock().unwrap().push_back("stolen-front");
        sched.queues[1].lock().unwrap().push_back("stolen-back");
        assert_eq!(sched.grab(0), Some("own"));
        // steals come from the sibling's *back*
        assert_eq!(sched.grab(0), Some("stolen-back"));
        assert_eq!(sched.grab(0), Some("stolen-front"));
        assert_eq!(sched.grab(0), None);
    }

    #[test]
    fn worker_loop_exits_on_shutdown_while_parked() {
        let sched: Arc<Scheduler<()>> = Arc::new(Scheduler::new(1));
        let s2 = Arc::clone(&sched);
        let h = std::thread::spawn(move || s2.worker_loop(0, None, |_| {}, || Idle::Park));
        sched.request_shutdown();
        h.join().unwrap(); // must not hang
    }

    #[test]
    fn worker_loop_drains_then_exits_via_idle() {
        let sched: Arc<Scheduler<u32>> = Arc::new(Scheduler::new(2));
        sched.push_batch((0..100).collect());
        let seen = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let sched = Arc::clone(&sched);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    sched.worker_loop(
                        i,
                        None,
                        |_| {
                            seen.fetch_add(1, Ordering::SeqCst);
                        },
                        || Idle::Exit,
                    )
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seen.load(Ordering::SeqCst), 100);
    }
}

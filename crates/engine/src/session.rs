//! The serving layer: one [`Engine`] caches warm per-graph state across
//! queries.
//!
//! A [`GraphSession`] holds the shared, internally synchronized
//! [`MsGraph`] for one input graph (keyed by a structural fingerprint) —
//! so its interned separators and memoized crossing tests survive across
//! `enumerate` / `best_k_by` / `decompose` calls — plus, once any
//! enumeration has run to completion, the full answer list, which later
//! queries replay without touching `Extend` at all. This is the "repeated
//! traffic" story: the first query over a graph pays for the enumeration,
//! every later one is a cache replay (or at worst a warm-memo rerun).

use crate::EngineConfig;
use mintri_core::{EnumerationBudget, MsGraph, MsGraphStats, SepId, TdEnumerationMode};
use mintri_graph::{FxHashMap, FxHasher, Graph};
use mintri_sgr::{EnumMis, PrintMode};
use mintri_treedecomp::{proper_decompositions_of_chordal, TreeDecomposition};
use mintri_triangulate::{McsM, Triangulation};
use std::hash::Hasher;
use std::sync::{Arc, Mutex};

/// Structural fingerprint of a graph: node count plus the canonical edge
/// list, hashed. Sessions verify true equality on lookup, so a collision
/// costs a comparison, never a wrong answer.
fn fingerprint(g: &Graph) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(g.num_nodes());
    for (u, v) in g.edges() {
        h.write_u32(u);
        h.write_u32(v);
    }
    h.finish()
}

/// Warm state for one graph: the shared memoized `MSGraph` and, once an
/// enumeration has completed, the full answer list in emission order.
pub struct GraphSession {
    graph: Arc<Graph>,
    ms: Arc<MsGraph<'static>>,
    answers: Mutex<Option<Arc<Vec<Vec<SepId>>>>>,
}

impl GraphSession {
    fn new(g: &Graph) -> Self {
        let graph = Arc::new(g.clone());
        GraphSession {
            ms: Arc::new(MsGraph::shared(Arc::clone(&graph), Box::new(McsM))),
            graph,
            answers: Mutex::new(None),
        }
    }

    /// The session's graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The shared memoized `MSGraph` (interner + crossing memo).
    pub fn msgraph(&self) -> &Arc<MsGraph<'static>> {
        &self.ms
    }

    /// Memo counters — watch `crossing_computed` stay flat across repeat
    /// queries to see the warm cache at work.
    pub fn stats(&self) -> MsGraphStats {
        self.ms.stats()
    }

    /// The cached complete answer list, if any enumeration has finished.
    pub fn cached_answers(&self) -> Option<Arc<Vec<Vec<SepId>>>> {
        self.answers.lock().unwrap().clone()
    }

    fn store_answers(&self, answers: Vec<Vec<SepId>>) {
        let mut slot = self.answers.lock().unwrap();
        if slot.is_none() {
            *slot = Some(Arc::new(answers));
        }
    }
}

enum Source {
    /// Replaying a previously completed enumeration — no `Extend` calls.
    Cached {
        answers: Arc<Vec<Vec<SepId>>>,
        next: usize,
    },
    /// Live parallel run on the engine's thread pool.
    #[cfg(feature = "parallel")]
    Live(crate::ParallelEnumerator),
    /// Live sequential run (one thread, or the `parallel` feature is
    /// disabled) — still against the warm shared memo. `Arc<MsGraph>` is
    /// itself an SGR, so the plain sequential iterator runs over the
    /// session's shared graph with no wrapper. Boxed: the frontier's
    /// bookkeeping dwarfs the other variants.
    Sequential(Box<EnumMis<Arc<MsGraph<'static>>>>),
}

/// Streaming iterator returned by [`Engine::enumerate`]. On natural
/// exhaustion of a live run it deposits the complete answer list back
/// into the session for future replays.
pub struct EngineEnumeration {
    session: Arc<GraphSession>,
    source: Source,
    recorded: Option<Vec<Vec<SepId>>>,
}

impl EngineEnumeration {
    fn next_pair(&mut self) -> Option<(Vec<SepId>, Triangulation)> {
        match &mut self.source {
            Source::Cached { answers, next } => {
                let answer = answers.get(*next)?.clone();
                *next += 1;
                let tri = self.session.ms.materialize(&answer);
                Some((answer, tri))
            }
            #[cfg(feature = "parallel")]
            Source::Live(par) => match par.next_pair() {
                Some(pair) => {
                    if let Some(rec) = &mut self.recorded {
                        rec.push(pair.0.clone());
                    }
                    Some(pair)
                }
                None => {
                    if par.is_complete() {
                        if let Some(rec) = self.recorded.take() {
                            self.session.store_answers(rec);
                        }
                    }
                    None
                }
            },
            Source::Sequential(seq) => match seq.next() {
                Some(answer) => {
                    if let Some(rec) = &mut self.recorded {
                        rec.push(answer.clone());
                    }
                    let tri = self.session.ms.materialize(&answer);
                    Some((answer, tri))
                }
                None => {
                    // A sequential stream only ends when complete.
                    if let Some(rec) = self.recorded.take() {
                        self.session.store_answers(rec);
                    }
                    None
                }
            },
        }
    }

    /// `true` when this stream replays a cached enumeration.
    pub fn is_replay(&self) -> bool {
        matches!(self.source, Source::Cached { .. })
    }
}

impl Iterator for EngineEnumeration {
    type Item = Triangulation;

    fn next(&mut self) -> Option<Triangulation> {
        self.next_pair().map(|(_, tri)| tri)
    }
}

/// The cache-sharing enumeration engine: a session store over
/// [`GraphSession`]s plus the query API. Cheap to share behind an `Arc`;
/// all methods take `&self`.
///
/// ```
/// use mintri_engine::Engine;
/// use mintri_graph::Graph;
///
/// let engine = Engine::new();
/// let g = Graph::cycle(6);
/// assert_eq!(engine.enumerate(&g).count(), 14); // computes
/// assert_eq!(engine.enumerate(&g).count(), 14); // replays the cache
/// assert_eq!(engine.sessions_cached(), 1);
/// ```
pub struct Engine {
    config: EngineConfig,
    sessions: Mutex<SessionStore>,
}

/// The session cache: fingerprint → colliding sessions (collisions are
/// astronomically rare but must coexist, not evict each other), with a
/// recency stamp per session for LRU eviction under `max_sessions`.
#[derive(Default)]
struct SessionStore {
    by_key: FxHashMap<u64, Vec<(u64, Arc<GraphSession>)>>,
    clock: u64,
    live: usize,
}

impl SessionStore {
    /// Looks `g` up, refreshing its recency stamp; `None` on miss.
    fn get(&mut self, key: u64, g: &Graph) -> Option<Arc<GraphSession>> {
        self.clock += 1;
        let clock = self.clock;
        let entries = self.by_key.get_mut(&key)?;
        for (stamp, session) in entries.iter_mut() {
            // Fingerprints are 64-bit but not a proof; verify.
            if session.graph.as_ref() == g {
                *stamp = clock;
                return Some(Arc::clone(session));
            }
        }
        None
    }

    fn insert(&mut self, key: u64, session: Arc<GraphSession>, cap: usize) {
        self.clock += 1;
        let clock = self.clock;
        self.by_key.entry(key).or_default().push((clock, session));
        self.live += 1;
        while self.live > cap.max(1) {
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        let Some((&victim_key, _)) = self
            .by_key
            .iter()
            .min_by_key(|(_, entries)| entries.iter().map(|(stamp, _)| *stamp).min())
        else {
            return;
        };
        let entries = self.by_key.get_mut(&victim_key).unwrap();
        let oldest = entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (stamp, _))| *stamp)
            .map(|(i, _)| i)
            .unwrap();
        entries.remove(oldest);
        if entries.is_empty() {
            self.by_key.remove(&victim_key);
        }
        self.live -= 1;
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Engine with the default configuration (auto thread count,
    /// unordered delivery).
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// Engine with an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine {
            config,
            sessions: Mutex::new(SessionStore::default()),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of graphs with live warm sessions.
    pub fn sessions_cached(&self) -> usize {
        self.sessions.lock().unwrap().live
    }

    /// The (existing or fresh) warm session for `g`. Touching a session
    /// refreshes it in the LRU order; when the store exceeds
    /// [`EngineConfig::max_sessions`], the least recently used session is
    /// dropped (its memory — memo tables and answer cache — with it).
    pub fn session(&self, g: &Graph) -> Arc<GraphSession> {
        let key = fingerprint(g);
        let mut sessions = self.sessions.lock().unwrap();
        if let Some(existing) = sessions.get(key, g) {
            return existing;
        }
        let session = Arc::new(GraphSession::new(g));
        sessions.insert(key, Arc::clone(&session), self.config.max_sessions);
        session
    }

    /// Drops the warm session for `g`, if any (frees its memo tables and
    /// cached answers; a later query rebuilds from scratch).
    pub fn evict(&self, g: &Graph) {
        let key = fingerprint(g);
        let mut sessions = self.sessions.lock().unwrap();
        let store = &mut *sessions;
        if let Some(entries) = store.by_key.get_mut(&key) {
            let before = entries.len();
            entries.retain(|(_, s)| s.graph.as_ref() != g);
            store.live -= before - entries.len();
            if entries.is_empty() {
                store.by_key.remove(&key);
            }
        }
    }

    /// Drops every warm session.
    pub fn clear_sessions(&self) {
        let mut sessions = self.sessions.lock().unwrap();
        sessions.by_key.clear();
        sessions.live = 0;
    }

    /// Streams the minimal triangulations of `g`: replayed from cache
    /// when a previous enumeration completed, otherwise computed live
    /// (in parallel when configured and compiled in) against the warm
    /// session memo.
    pub fn enumerate(&self, g: &Graph) -> EngineEnumeration {
        let session = self.session(g);
        if let Some(answers) = session.cached_answers() {
            return EngineEnumeration {
                session,
                source: Source::Cached { answers, next: 0 },
                recorded: None,
            };
        }
        let source = self.live_source(&session);
        EngineEnumeration {
            session,
            source,
            recorded: Some(Vec::new()),
        }
    }

    #[cfg(feature = "parallel")]
    fn live_source(&self, session: &Arc<GraphSession>) -> Source {
        if self.config.resolved_threads() > 1 {
            Source::Live(crate::ParallelEnumerator::from_msgraph(
                Arc::clone(&session.ms),
                &self.config,
            ))
        } else {
            Source::Sequential(Box::new(EnumMis::new(
                Arc::clone(&session.ms),
                PrintMode::UponGeneration,
            )))
        }
    }

    #[cfg(not(feature = "parallel"))]
    fn live_source(&self, session: &Arc<GraphSession>) -> Source {
        Source::Sequential(Box::new(EnumMis::new(
            Arc::clone(&session.ms),
            PrintMode::UponGeneration,
        )))
    }

    /// The `k` best triangulations of `g` under `cost` (smaller is
    /// better) within `budget`, in ascending cost order; ties keep the
    /// earlier-produced result. The engine-level twin of
    /// [`mintri_core::best_k_by`], sharing the warm session.
    pub fn best_k_by<C, F>(
        &self,
        g: &Graph,
        k: usize,
        budget: EnumerationBudget,
        cost: F,
    ) -> Vec<Triangulation>
    where
        C: Ord,
        F: Fn(&Triangulation) -> C,
    {
        mintri_core::best_k_of_stream(self.enumerate(g), k, budget, cost)
    }

    /// Streams proper tree decompositions of `g`, expanding each minimal
    /// triangulation from the (cached or live) enumeration.
    pub fn decompose(
        &self,
        g: &Graph,
        mode: TdEnumerationMode,
    ) -> impl Iterator<Item = TreeDecomposition> {
        let stream = self.enumerate(g);
        stream.flat_map(move |tri| -> Box<dyn Iterator<Item = TreeDecomposition>> {
            match mode {
                TdEnumerationMode::OnePerClass => {
                    let forest = mintri_chordal::CliqueForest::build(&tri.graph);
                    Box::new(std::iter::once(TreeDecomposition {
                        bags: forest.cliques,
                        edges: forest.edges,
                    }))
                }
                TdEnumerationMode::AllDecompositions => {
                    Box::new(proper_decompositions_of_chordal(&tri.graph))
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_core::{MinimalTriangulationsEnumerator, ProperTreeDecompositions};

    #[test]
    fn repeat_enumeration_replays_from_cache() {
        let engine = Engine::new();
        let g = Graph::cycle(7);
        let first: Vec<_> = engine.enumerate(&g).map(|t| t.graph.edges()).collect();
        assert_eq!(first.len(), 42);
        let session = engine.session(&g);
        let extends_after_first = session.stats().extends;
        let replay = engine.enumerate(&g);
        assert!(replay.is_replay());
        let second: Vec<_> = replay.map(|t| t.graph.edges()).collect();
        assert_eq!(first, second, "replay preserves emission order");
        assert_eq!(
            session.stats().extends,
            extends_after_first,
            "replay must not invoke Extend"
        );
        assert_eq!(engine.sessions_cached(), 1);
    }

    #[test]
    fn incomplete_runs_do_not_poison_the_cache() {
        let engine = Engine::new();
        let g = Graph::cycle(9);
        let mut stream = engine.enumerate(&g);
        let _ = stream.next();
        drop(stream); // abandoned early: no cached answer list
        assert!(engine.session(&g).cached_answers().is_none());
        // a full run afterwards still works and caches
        let n = engine.enumerate(&g).count();
        assert_eq!(n, MinimalTriangulationsEnumerator::new(&g).count());
        assert!(engine.session(&g).cached_answers().is_some());
    }

    #[test]
    fn session_store_evicts_least_recently_used() {
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            max_sessions: 2,
            ..EngineConfig::default()
        });
        let (a, b, c) = (Graph::cycle(4), Graph::cycle(5), Graph::cycle(6));
        let sa = engine.session(&a);
        let _sb = engine.session(&b);
        let sa2 = engine.session(&a); // touch a: b becomes the LRU
        assert!(Arc::ptr_eq(&sa, &sa2));
        let _sc = engine.session(&c); // evicts b
        assert_eq!(engine.sessions_cached(), 2);
        assert!(Arc::ptr_eq(&sa, &engine.session(&a)), "a stayed warm");
        // b was evicted: a fresh session comes back for it
        let _ = engine.session(&b);
        assert_eq!(engine.sessions_cached(), 2);
    }

    #[test]
    fn explicit_eviction_frees_sessions() {
        let engine = Engine::new();
        let g = Graph::cycle(5);
        let s1 = engine.session(&g);
        engine.evict(&g);
        assert_eq!(engine.sessions_cached(), 0);
        assert!(!Arc::ptr_eq(&s1, &engine.session(&g)));
        engine.clear_sessions();
        assert_eq!(engine.sessions_cached(), 0);
    }

    #[test]
    fn sessions_are_fingerprint_keyed() {
        let engine = Engine::new();
        let a = Graph::cycle(5);
        let b = Graph::path(5);
        let _ = engine.enumerate(&a).count();
        let _ = engine.enumerate(&b).count();
        assert_eq!(engine.sessions_cached(), 2);
        let s1 = engine.session(&a);
        let s2 = engine.session(&Graph::cycle(5));
        assert!(Arc::ptr_eq(&s1, &s2), "equal graphs share a session");
    }

    #[test]
    fn best_k_matches_core_ranked() {
        let engine = Engine::new();
        let g = Graph::cycle(7);
        let best = engine.best_k_by(&g, 3, EnumerationBudget::unlimited(), |t| t.fill_count());
        assert_eq!(best.len(), 3);
        assert!(best.iter().all(|t| t.fill_count() == 4));
    }

    #[test]
    fn decompose_matches_sequential_pipeline() {
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let g = Graph::cycle(6);
        let mut via_engine: Vec<_> = engine
            .decompose(&g, TdEnumerationMode::AllDecompositions)
            .map(|d| (d.num_bags(), d.width()))
            .collect();
        let mut via_core: Vec<_> = ProperTreeDecompositions::new(&g)
            .map(|d| (d.num_bags(), d.width()))
            .collect();
        via_engine.sort();
        via_core.sort();
        assert_eq!(via_engine, via_core);
    }

    #[test]
    fn warm_sessions_share_crossing_work_across_queries() {
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let g = Graph::cycle(8);
        // Different query kinds against one session: enumeration first...
        let _ = engine.enumerate(&g).count();
        let computed_once = engine.session(&g).stats().crossing_computed;
        assert!(computed_once > 0);
        // ...then best-k, which replays and computes nothing new.
        let _ = engine.best_k_by(&g, 2, EnumerationBudget::unlimited(), |t| t.width());
        assert_eq!(engine.session(&g).stats().crossing_computed, computed_once);
    }
}

//! The serving layer: one [`Engine`] caches warm per-graph state across
//! queries, and [`Engine::run`] executes any typed
//! [`Query`](mintri_core::query::Query) against it — routed through the
//! planning layer, so the cached unit is the **atom subgraph**, not the
//! whole query graph.
//!
//! A [`GraphSession`] holds the shared, internally synchronized
//! [`MsGraph`] for one (graph, triangulation backend) pair — so its
//! interned separators and memoized crossing tests survive across
//! queries — plus, once any enumeration has run to completion, the full
//! answer list, keyed by the order contract it was recorded under
//! (unordered discovery, or a sequential [`PrintMode`] schedule). Later
//! queries whose delivery contract the recorded order satisfies replay
//! it without touching `Extend` at all — for *every* task: enumeration,
//! best-k, decomposition and stats queries all stream through the same
//! replay-aware source. This is the "repeated traffic" story: the first
//! query over a graph pays for its atoms' enumerations, every later one
//! — including queries on *different* graphs sharing an atom — is a
//! cache replay (or at worst a warm-memo rerun).

use crate::profile::{Prediction, ProfileView, Profiler, ProfilerInstruments, RunKind, RunRecord};
use crate::telemetry::EngineTelemetry;
use crate::EngineConfig;
use mintri_core::query::{
    AtomDispatch, AtomStream, CancelToken, ComposedStream, CostMeasure, Delivery, DispatchKind,
    Plan, Query, Response, Task, TracedStream, TriangulationStream,
};
use mintri_core::{
    cost_floor, MsGraph, MsGraphStats, RankedAtom, RankedComposed, RankedStream, SepId,
};
use mintri_graph::{FxHashMap, FxHasher, Graph, NodeSet};
use mintri_sgr::{EnumMis, EnumMisStats, PrintMode};
use mintri_store::{AnswerSnapshot, MemoSummary, PlanSnapshot, Store, StoredOrder};
use mintri_telemetry::{Counter, Histogram, Registry, TraceBuilder};
use mintri_triangulate::{McsM, Triangulation, Triangulator};
use std::hash::Hasher;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cached plans colliding under one fingerprint (equality-verified on
/// lookup, like sessions).
type PlanBucket = Vec<(Graph, Arc<Plan>)>;

/// Below this predicted live wall (µs), `ExecPolicy::Auto` demotes the
/// dispatch to sequential: spinning the pool up costs more than it buys
/// on sub-millisecond enumerations. Scheduling only — the answer set is
/// identical either way.
const AUTO_SEQUENTIAL_WALL_US: u64 = 2_000;

/// Structural fingerprint of a graph: node count plus the canonical edge
/// list, hashed. Sessions verify true equality on lookup, so a collision
/// costs a comparison, never a wrong answer. Public because the serving
/// layers key their own registries by the same value (one definition —
/// graph ids and session keys must never diverge).
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(g.num_nodes());
    for (u, v) in g.edges() {
        h.write_u32(u);
        h.write_u32(v);
    }
    h.finish()
}

/// The order contract a cached answer list was recorded under.
///
/// An `Ordered(mode)` list is the sequential schedule's emission order
/// and can serve *any* query; an `Unordered` list is one particular
/// race outcome — set-correct, so it serves [`Delivery::Unordered`]
/// queries, but never a [`Delivery::Deterministic`] one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum AnswerKey {
    /// Recorded from an unordered parallel run.
    Unordered,
    /// Recorded from the sequential schedule under this print mode.
    Ordered(PrintMode),
}

impl AnswerKey {
    /// The store-level rendering of this order contract — part of an
    /// entry's disk identity, so the mapping must never change meaning.
    fn stored_order(self) -> StoredOrder {
        match self {
            AnswerKey::Unordered => StoredOrder::Unordered,
            AnswerKey::Ordered(PrintMode::UponGeneration) => StoredOrder::UponGeneration,
            AnswerKey::Ordered(PrintMode::UponPop) => StoredOrder::UponPop,
        }
    }
}

/// The portable snapshot of one recorded answer list: separators leave
/// as sorted vertex lists (session-local [`SepId`]s mean nothing to
/// another process) together with the graph itself, so a loader can
/// verify equality before trusting a fingerprint match.
fn answer_snapshot(
    session: &GraphSession,
    key: AnswerKey,
    answers: &[Vec<SepId>],
) -> AnswerSnapshot {
    let stats = session.ms.stats();
    AnswerSnapshot {
        fingerprint: graph_fingerprint(&session.graph),
        backend: session.backend.to_string(),
        order: key.stored_order(),
        nodes: session.graph.num_nodes() as u32,
        edges: session.graph.edges(),
        answers: answers
            .iter()
            .map(|answer| {
                answer
                    .iter()
                    .map(|&id| session.ms.separator(id).to_vec())
                    .collect()
            })
            .collect(),
        summary: MemoSummary {
            extends: stats.extends as u64,
            crossing_computed: stats.crossing_computed as u64,
            separators_interned: stats.separators_interned as u64,
        },
    }
}

/// Warm state for one (graph, triangulation backend) pair: the shared
/// memoized `MSGraph` and, per completed enumeration order, the full
/// answer list.
pub struct GraphSession {
    graph: Arc<Graph>,
    backend: &'static str,
    ms: Arc<MsGraph<'static>>,
    answers: Mutex<FxHashMap<AnswerKey, Arc<Vec<Vec<SepId>>>>>,
}

impl GraphSession {
    fn new(g: &Graph, triangulator: Box<dyn Triangulator>) -> Self {
        let graph = Arc::new(g.clone());
        GraphSession {
            backend: triangulator.name(),
            ms: Arc::new(MsGraph::shared(Arc::clone(&graph), triangulator)),
            graph,
            answers: Mutex::new(FxHashMap::default()),
        }
    }

    /// The session's graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The name of the triangulation backend this session runs.
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// The shared memoized `MSGraph` (interner + crossing memo).
    pub fn msgraph(&self) -> &Arc<MsGraph<'static>> {
        &self.ms
    }

    /// Memo counters — watch `crossing_computed` stay flat across repeat
    /// queries to see the warm cache at work.
    pub fn stats(&self) -> MsGraphStats {
        self.ms.stats()
    }

    /// A cached complete answer list, if any enumeration has finished
    /// (any recorded order).
    pub fn cached_answers(&self) -> Option<Arc<Vec<Vec<SepId>>>> {
        // An unordered consumer accepts any recorded order — the same
        // rule the engine's replay dispatch uses.
        self.replayable(Delivery::Unordered, PrintMode::UponGeneration)
    }

    /// The cached answer list able to serve a query with this delivery
    /// contract and print mode, if one exists.
    fn replayable(&self, delivery: Delivery, mode: PrintMode) -> Option<Arc<Vec<Vec<SepId>>>> {
        let answers = self.answers.lock().unwrap();
        match delivery {
            // Only the matching sequential order is bit-identical.
            Delivery::Deterministic => answers.get(&AnswerKey::Ordered(mode)).cloned(),
            // Any completed list is set-correct.
            Delivery::Unordered => answers
                .get(&AnswerKey::Ordered(mode))
                .or_else(|| answers.get(&AnswerKey::Unordered))
                .or_else(|| answers.values().next())
                .cloned(),
        }
    }

    /// Deposits a completed answer list under `key` and returns the list
    /// now cached there — the deposited one, or the incumbent when a
    /// racing run (or hydrate) got there first.
    fn store_answers(&self, key: AnswerKey, answers: Vec<Vec<SepId>>) -> Arc<Vec<Vec<SepId>>> {
        Arc::clone(
            self.answers
                .lock()
                .unwrap()
                .entry(key)
                .or_insert_with(|| Arc::new(answers)),
        )
    }

    /// Every recorded answer list, by order key — what an eviction spill
    /// walks to persist the session's winnings before the RAM goes away.
    fn export_answers(&self) -> Vec<(AnswerKey, Arc<Vec<Vec<SepId>>>)> {
        self.answers
            .lock()
            .unwrap()
            .iter()
            .map(|(key, answers)| (*key, Arc::clone(answers)))
            .collect()
    }
}

/// The portable snapshot of a memoized plan: the decomposition's vertex
/// sets plus the graph for load-time equality verification. The planner
/// re-derives induced subgraphs and chordality on hydrate — cheap next
/// to the decomposition (one MCS-M triangulation per split) being
/// skipped.
fn plan_snapshot(g: &Graph, fingerprint: u64, plan: &Plan) -> PlanSnapshot {
    let sets = |sets: &[NodeSet]| -> Vec<Vec<u32>> { sets.iter().map(|s| s.to_vec()).collect() };
    PlanSnapshot {
        fingerprint,
        nodes: g.num_nodes() as u32,
        edges: g.edges(),
        components: sets(&plan.decomposition.components),
        atoms: sets(&plan.decomposition.atoms),
        separators: sets(&plan.decomposition.separators),
    }
}

enum Source {
    /// Replaying a previously completed enumeration — no `Extend` calls.
    Cached {
        answers: Arc<Vec<Vec<SepId>>>,
        next: usize,
    },
    /// Live parallel run on the engine's thread pool.
    #[cfg(feature = "parallel")]
    Live(crate::ParallelEnumerator),
    /// Live sequential run (one thread, or the `parallel` feature is
    /// disabled) — still against the warm shared memo. `Arc<MsGraph>` is
    /// itself an SGR, so the plain sequential iterator runs over the
    /// session's shared graph with no wrapper. Boxed: the frontier's
    /// bookkeeping dwarfs the other variants.
    Sequential(Box<EnumMis<Arc<MsGraph<'static>>>>),
}

/// The engine's replay-aware triangulation stream: what every
/// [`Engine::run`] response consumes — one per planned atom (composed),
/// or one for the whole graph when the plan reduces nothing. On natural
/// exhaustion of a live run it deposits the complete answer list back
/// into its session for future replays, under the order key the run was
/// executed with.
pub(crate) struct EngineEnumeration {
    session: Arc<GraphSession>,
    source: Source,
    recorded: Option<(AnswerKey, Vec<Vec<SepId>>)>,
    /// The persistent tier (plus its spill counter), when the engine has
    /// one: a natural completion writes the deposited answer list
    /// through to disk (write-behind — the enqueue is the only hot-path
    /// cost).
    spill: Option<(Arc<Store>, Arc<Counter>)>,
    /// Stream creation time; its lifetime lands in `wall` at drop.
    created: Instant,
    /// The engine's stream-lifetime histogram. Recording happens once,
    /// at drop — two clock reads per stream total, so the always-on
    /// metric cannot perturb per-result delay.
    wall: Option<Arc<Histogram>>,
    /// The cost-profile deposit made at drop: how this stream was
    /// served plus the counters observed while streaming.
    profile: Option<ProfileCapture>,
    /// Keeps the query token's abort hook registered for exactly this
    /// stream's lifetime — dropping the stream deregisters it, so a
    /// long-lived token does not accumulate hooks from finished runs.
    #[cfg(feature = "parallel")]
    _cancel_hook: Option<mintri_core::query::CancelHookGuard>,
}

/// The per-stream observation the profile layer folds in at drop. One
/// clock read per result at most (first result only) and one lock at
/// drop — nothing on the `Extend` hot path.
struct ProfileCapture {
    profiler: Arc<Profiler>,
    store: Option<Arc<Store>>,
    fingerprint: u64,
    backend: &'static str,
    nodes: u32,
    kind: RunKind,
    results: u64,
    first_us: Option<u64>,
    /// The session's cumulative `Extend` counter at stream creation;
    /// the drop-time delta is this run's attribution (approximate under
    /// concurrent streams on one session — fine for scheduling).
    extends_start: u64,
    completed: bool,
}

impl Drop for EngineEnumeration {
    fn drop(&mut self) {
        if let Some(wall) = self.wall.take() {
            wall.record_duration(self.created.elapsed());
        }
        if let Some(p) = self.profile.take() {
            let wall_us = self.created.elapsed().as_micros() as u64;
            let extends = (self.session.stats().extends as u64).saturating_sub(p.extends_start);
            p.profiler.record_run(
                p.fingerprint,
                p.backend,
                p.nodes,
                RunRecord {
                    kind: p.kind,
                    completed: p.completed,
                    results: p.results,
                    first_us: p.first_us,
                    wall_us,
                    extends,
                },
                p.store.as_deref(),
            );
        }
    }
}

impl EngineEnumeration {
    fn next_pair(&mut self) -> Option<(Vec<SepId>, Triangulation)> {
        let pair = self.next_pair_inner();
        if let Some(p) = &mut self.profile {
            if pair.is_some() {
                p.results += 1;
                if p.first_us.is_none() {
                    p.first_us = Some(self.created.elapsed().as_micros() as u64);
                }
            }
        }
        pair
    }

    fn next_pair_inner(&mut self) -> Option<(Vec<SepId>, Triangulation)> {
        let pair = match &mut self.source {
            Source::Cached { answers, next } => {
                let answer = answers.get(*next)?.clone();
                *next += 1;
                let tri = self.session.ms.materialize(&answer);
                return Some((answer, tri));
            }
            #[cfg(feature = "parallel")]
            Source::Live(par) => match par.next_pair() {
                Some(pair) => {
                    if let Some((_, rec)) = &mut self.recorded {
                        rec.push(pair.0.clone());
                    }
                    Some(pair)
                }
                None => {
                    if !par.is_complete() {
                        // Aborted mid-run: an incomplete list must never
                        // be deposited, in RAM or on disk.
                        self.recorded = None;
                    }
                    None
                }
            },
            Source::Sequential(seq) => match seq.next() {
                Some(answer) => {
                    if let Some((_, rec)) = &mut self.recorded {
                        rec.push(answer.clone());
                    }
                    let tri = self.session.ms.materialize(&answer);
                    Some((answer, tri))
                }
                // A sequential stream only ends when complete.
                None => None,
            },
        };
        if pair.is_none() {
            self.deposit();
        }
        pair
    }

    /// Deposits the recording into the session — and, with a store
    /// attached, spills it to disk (write-behind; `overwrite = true`
    /// because a completed run is the freshest truth for its key).
    fn deposit(&mut self) {
        if let Some((key, rec)) = self.recorded.take() {
            // A deposit is the proof of natural completion — the only
            // observation allowed to teach the profile a full wall.
            if let Some(p) = &mut self.profile {
                p.completed = true;
            }
            let answers = self.session.store_answers(key, rec);
            if let Some((store, spills)) = &self.spill {
                store.put_answers(&answer_snapshot(&self.session, key, &answers), true);
                spills.inc();
            }
        }
    }

    /// `true` when this stream replays a cached enumeration.
    pub fn is_replay(&self) -> bool {
        matches!(self.source, Source::Cached { .. })
    }

    /// How this stream is actually served, for dispatch reporting
    /// (distinguishes a RAM replay from a disk hydration, which
    /// `is_replay` deliberately conflates).
    fn served_kind(&self) -> RunKind {
        match &self.profile {
            Some(p) => p.kind,
            None if self.is_replay() => RunKind::Replay,
            None => RunKind::Live,
        }
    }
}

impl Iterator for EngineEnumeration {
    type Item = Triangulation;

    fn next(&mut self) -> Option<Triangulation> {
        self.next_pair().map(|(_, tri)| tri)
    }
}

impl TriangulationStream for EngineEnumeration {
    fn next_tri(&mut self) -> Option<Triangulation> {
        self.next_pair().map(|(_, tri)| tri)
    }

    fn finished(&self) -> bool {
        match &self.source {
            // A replay or sequential stream only ends by exhaustion.
            Source::Cached { .. } | Source::Sequential(_) => true,
            #[cfg(feature = "parallel")]
            Source::Live(par) => par.is_complete(),
        }
    }

    fn enum_stats(&self) -> Option<EnumMisStats> {
        match &self.source {
            Source::Cached { .. } => None,
            #[cfg(feature = "parallel")]
            Source::Live(par) => par.enum_stats(),
            Source::Sequential(seq) => Some(seq.stats()),
        }
    }

    fn is_replay(&self) -> bool {
        EngineEnumeration::is_replay(self)
    }
}

/// The cache-sharing enumeration engine: a session store over
/// [`GraphSession`]s plus the one serving entry point, [`Engine::run`].
/// Cheap to share behind an `Arc`; all methods take `&self`.
///
/// ```
/// use mintri_engine::{Engine, Query};
/// use mintri_graph::Graph;
///
/// let engine = Engine::new();
/// let g = Graph::cycle(6);
/// assert_eq!(engine.run(&g, Query::enumerate()).count(), 14); // computes
/// assert_eq!(engine.run(&g, Query::enumerate()).count(), 14); // replays the cache
/// assert_eq!(engine.sessions_cached(), 1);
/// ```
pub struct Engine {
    config: EngineConfig,
    sessions: Mutex<SessionStore>,
    /// Memoized atom decompositions, fingerprint-keyed like the
    /// sessions (collisions verified by equality), so warm repeated
    /// traffic skips straight to the per-atom replay caches.
    plans: Mutex<FxHashMap<u64, PlanBucket>>,
    /// The persistent warm-state tier, when one is attached
    /// ([`Engine::with_store`]): sessions hydrate from it on a RAM miss
    /// and spill back to it on completion and eviction. `None` keeps
    /// every prior engine behavior bit for bit.
    store: Option<Arc<Store>>,
    /// Registered metric handles (and the registry they live in).
    telemetry: EngineTelemetry,
    /// The learned per-atom cost profiles driving `ExecPolicy::Auto`
    /// dispatch. Engine-lived (profiles outlive session eviction) and
    /// persisted through `store` when one is attached.
    profiler: Arc<Profiler>,
}

/// The session cache: fingerprint → colliding sessions (collisions are
/// astronomically rare but must coexist, not evict each other; distinct
/// triangulation backends over one graph also coexist here), with a
/// recency stamp per session for LRU eviction under `max_sessions`.
#[derive(Default)]
struct SessionStore {
    by_key: FxHashMap<u64, Vec<(u64, Arc<GraphSession>)>>,
    clock: u64,
    live: usize,
}

impl SessionStore {
    /// Looks `(g, backend)` up, refreshing its recency stamp; `None` on
    /// miss.
    fn get(&mut self, key: u64, g: &Graph, backend: &str) -> Option<Arc<GraphSession>> {
        self.clock += 1;
        let clock = self.clock;
        let entries = self.by_key.get_mut(&key)?;
        for (stamp, session) in entries.iter_mut() {
            // Fingerprints are 64-bit but not a proof; verify.
            if session.graph.as_ref() == g && session.backend == backend {
                *stamp = clock;
                return Some(Arc::clone(session));
            }
        }
        None
    }

    /// Inserts, evicting LRU sessions past `cap`; returns the evicted
    /// sessions (the caller owns the telemetry counters — and, with a
    /// store attached, spills them outside this lock).
    fn insert(
        &mut self,
        key: u64,
        session: Arc<GraphSession>,
        cap: usize,
    ) -> Vec<Arc<GraphSession>> {
        self.clock += 1;
        let clock = self.clock;
        self.by_key.entry(key).or_default().push((clock, session));
        self.live += 1;
        let mut evicted = Vec::new();
        while self.live > cap.max(1) {
            match self.evict_lru() {
                Some(victim) => evicted.push(victim),
                None => break,
            }
        }
        evicted
    }

    fn evict_lru(&mut self) -> Option<Arc<GraphSession>> {
        let (&victim_key, _) = self
            .by_key
            .iter()
            .min_by_key(|(_, entries)| entries.iter().map(|(stamp, _)| *stamp).min())?;
        let entries = self.by_key.get_mut(&victim_key).unwrap();
        let oldest = entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (stamp, _))| *stamp)
            .map(|(i, _)| i)
            .unwrap();
        let (_, victim) = entries.remove(oldest);
        if entries.is_empty() {
            self.by_key.remove(&victim_key);
        }
        self.live -= 1;
        Some(victim)
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Engine with the default configuration (auto thread count,
    /// unordered delivery).
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// Engine with an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        let telemetry = EngineTelemetry::new(Arc::new(Registry::new()));
        let profiler = Arc::new(Profiler::new().instrumented(ProfilerInstruments {
            runs_recorded: Arc::clone(&telemetry.profile_runs_recorded),
            persists: Arc::clone(&telemetry.profile_persists),
            hydrates: Arc::clone(&telemetry.profile_hydrates),
            entries: Arc::clone(&telemetry.profile_entries),
        }));
        Engine {
            config,
            sessions: Mutex::new(SessionStore::default()),
            plans: Mutex::new(FxHashMap::default()),
            store: None,
            telemetry,
            profiler,
        }
    }

    /// Engine backed by a persistent warm-state tier. Dispatch per
    /// stream becomes replay → disk-hydrate → parallel → sequential:
    /// completed runs and evicted sessions spill their answer lists (and
    /// memoized plans) to `store`, and a RAM miss whose entry is on disk
    /// rebuilds the warm session by re-interning instead of
    /// re-enumerating — across restarts, and across replicas sharing the
    /// directory.
    pub fn with_store(config: EngineConfig, store: Arc<Store>) -> Self {
        let mut engine = Self::with_config(config);
        engine.store = Some(store);
        engine
    }

    /// The attached persistent tier, if any. Serving layers persist
    /// their registries through the same handle — one store, one
    /// eviction policy, one budget.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The learned cost-profile table. Mostly for inspection; the
    /// engine consults it itself on every `ExecPolicy::Auto` dispatch.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Every profile the engine holds, hottest (slowest predicted
    /// wall) first — the rows `/v1/stats` renders under `profile`.
    pub fn profile_views(&self) -> Vec<ProfileView> {
        self.profiler.views()
    }

    /// The profile's wall-clock prediction (µs) for serving `g` live
    /// under `backend`: the summed predictions of its plan's atoms, or
    /// the whole-graph prediction when the plan reduces nothing. `None`
    /// until at least one contributing atom has a completed live run on
    /// record. Serving layers use it to default timeouts for
    /// known-slow graphs.
    pub fn predicted_wall_us(&self, g: &Graph, backend: &'static str) -> Option<u64> {
        let plan = self.plan_for(g);
        let store = self.store.as_deref();
        if plan.is_unreduced() {
            return self
                .profiler
                .predict(graph_fingerprint(g), backend, store)
                .map(|p| p.wall_us);
        }
        let mut total = 0u64;
        let mut known = false;
        for atom in &plan.atoms {
            if let Some(p) = self
                .profiler
                .predict(graph_fingerprint(&atom.graph), backend, store)
            {
                total = total.saturating_add(p.wall_us);
                known = true;
            }
        }
        known.then_some(total)
    }

    /// The engine's registered metric handles: session churn, replay
    /// hits/misses, plan-cache traffic, build and stream-lifetime
    /// histograms.
    pub fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    /// The metrics registry this engine registers into. Serving layers
    /// add their own per-endpoint families here, so a single
    /// [`Registry::render_prometheus`] call covers engine and transport
    /// alike.
    pub fn registry(&self) -> &Arc<Registry> {
        self.telemetry.registry()
    }

    /// Refreshes the gauge mirrors of pull-only state: the summed
    /// `MsGraph` memo counters and the live-session count. Call before
    /// rendering the registry (e.g. on each `GET /v1/metrics`).
    pub fn refresh_gauges(&self) {
        let stats = self.memo_stats();
        let t = &self.telemetry;
        t.memo_extends.set(stats.extends as i64);
        t.memo_crossing_computed.set(stats.crossing_computed as i64);
        t.memo_crossing_cached.set(stats.crossing_cached as i64);
        t.memo_separators_interned
            .set(stats.separators_interned as i64);
        t.sessions_live.set(self.sessions_cached() as i64);
        if let Some(store) = &self.store {
            t.store_bytes.set(store.bytes_stored() as i64);
            t.store_entries.set(store.entries() as i64);
        }
    }

    /// Number of live warm sessions.
    pub fn sessions_cached(&self) -> usize {
        self.sessions.lock().unwrap().live
    }

    /// The (existing or fresh) warm session for `g` under the default
    /// (MCS-M) backend. Touching a session refreshes it in the LRU
    /// order; when the store exceeds [`EngineConfig::max_sessions`], the
    /// least recently used session is dropped (its memory — memo tables
    /// and answer cache — with it).
    pub fn session(&self, g: &Graph) -> Arc<GraphSession> {
        self.session_keyed(g, Box::new(McsM))
    }

    /// The warm session for `g` under `triangulator`'s backend (sessions
    /// are keyed by graph *and* backend name — different backends
    /// discover the same answer set in different orders, so their caches
    /// must not alias). Consumes the triangulator only on a miss.
    fn session_keyed(&self, g: &Graph, triangulator: Box<dyn Triangulator>) -> Arc<GraphSession> {
        let key = graph_fingerprint(g);
        {
            let mut sessions = self.sessions.lock().unwrap();
            if let Some(existing) = sessions.get(key, g, triangulator.name()) {
                return existing;
            }
        }
        // Build the warm state outside the store lock: construction
        // clones the graph and allocates the sharded memo tables, and
        // concurrent traffic on *other* graphs must not serialize behind
        // it. Two clients racing on the same new graph both build; the
        // re-check below keeps exactly one.
        let build_start = Instant::now();
        let session = Arc::new(GraphSession::new(g, triangulator));
        let build_time = build_start.elapsed();
        let mut sessions = self.sessions.lock().unwrap();
        if let Some(existing) = sessions.get(key, g, session.backend()) {
            // Lost the race: the discarded duplicate is not a cold build.
            return existing;
        }
        let evicted = sessions.insert(key, Arc::clone(&session), self.config.max_sessions);
        let live = sessions.live;
        drop(sessions);
        self.telemetry.sessions_built.inc();
        self.telemetry.session_build_us.record_duration(build_time);
        self.telemetry.sessions_evicted.add(evicted.len() as u64);
        self.telemetry.sessions_live.set(live as i64);
        // Spill outside the store lock: the write is an enqueue, but the
        // snapshot encoding walks the victim's answer lists.
        for victim in &evicted {
            self.spill_session(victim);
        }
        session
    }

    /// Persists every recorded answer list of a session about to lose
    /// its RAM (LRU pressure, explicit eviction, or a clear), so the
    /// winnings survive as disk entries instead of vanishing. No-op
    /// without a store — the pre-store engine dropped them silently,
    /// which is exactly the bug this path closes. `overwrite = false`:
    /// completed runs already wrote the freshest copy through on
    /// deposit; an eviction must not clobber it with the same data (or
    /// race a concurrent deposit).
    fn spill_session(&self, session: &Arc<GraphSession>) {
        let Some(store) = &self.store else { return };
        for (key, answers) in session.export_answers() {
            store.put_answers(&answer_snapshot(session, key, &answers), false);
            self.telemetry.store_spills.inc();
        }
    }

    /// Drops every warm session for `g` (all backends) and its cached
    /// plan, if any — frees their memo tables and cached answers; a
    /// later query rebuilds from scratch. (An atom session shared with
    /// another graph is only dropped when evicted under *its own*
    /// subgraph.)
    /// With a store attached the sessions spill their recorded answers
    /// to disk first (plans were already persisted at compute time), so
    /// "rebuilds from scratch" becomes "rehydrates from disk".
    pub fn evict(&self, g: &Graph) {
        let key = graph_fingerprint(g);
        let mut sessions = self.sessions.lock().unwrap();
        let store = &mut *sessions;
        let mut victims = Vec::new();
        if let Some(entries) = store.by_key.get_mut(&key) {
            entries.retain(|(_, s)| {
                if s.graph.as_ref() == g {
                    victims.push(Arc::clone(s));
                    false
                } else {
                    true
                }
            });
            store.live -= victims.len();
            if entries.is_empty() {
                store.by_key.remove(&key);
            }
        }
        let live = store.live;
        drop(sessions);
        self.telemetry.sessions_evicted.add(victims.len() as u64);
        self.telemetry.sessions_live.set(live as i64);
        for victim in &victims {
            self.spill_session(victim);
        }
        let mut plans = self.plans.lock().unwrap();
        if let Some(entries) = plans.get_mut(&key) {
            entries.retain(|(pg, _)| pg != g);
            if entries.is_empty() {
                plans.remove(&key);
            }
        }
    }

    /// Drops every warm session and cached plan (spilling recorded
    /// answers to the store first, when one is attached).
    pub fn clear_sessions(&self) {
        let mut sessions = self.sessions.lock().unwrap();
        let removed = sessions.live;
        let victims: Vec<Arc<GraphSession>> = sessions
            .by_key
            .values()
            .flat_map(|entries| entries.iter().map(|(_, s)| Arc::clone(s)))
            .collect();
        sessions.by_key.clear();
        sessions.live = 0;
        drop(sessions);
        self.telemetry.sessions_evicted.add(removed as u64);
        self.telemetry.sessions_live.set(0);
        for victim in &victims {
            self.spill_session(victim);
        }
        self.plans.lock().unwrap().clear();
    }

    /// **The serving entry point**: executes a typed [`Query`] against
    /// the warm sessions for `g`'s plan and returns the unified
    /// [`Response`] stream.
    ///
    /// Unless the query disables planning, `g` is first decomposed into
    /// clique-minimal-separator atoms
    /// ([`Plan`](mintri_core::query::Plan)); **sessions are keyed per
    /// atom subgraph** (fingerprint + backend), one replay-aware stream
    /// runs per non-trivial atom, and the product composer recombines
    /// them. Two queries on *different* graphs that share an atom
    /// therefore share that atom's warm memo and recorded answers — the
    /// cross-query reuse whole-graph keying cannot express. A plan that
    /// reduces nothing (one atom spanning the graph) falls back to the
    /// whole-graph session below.
    ///
    /// Per-atom (and whole-graph) dispatch, in order:
    ///
    /// 1. **Replay** — if a completed answer list compatible with the
    ///    query's [`Delivery`] contract and [`PrintMode`] is cached, it
    ///    is served with zero `Extend` calls ([`Response::is_replay`]),
    ///    for every task: ranked and decomposition queries replay just
    ///    like plain enumerations.
    /// 2. **Parallel** — otherwise, when the effective thread count
    ///    (`query.threads`, or this engine's configured parallelism when
    ///    `0`) exceeds one and the `parallel` feature is compiled in,
    ///    the query runs on the work-stealing pool under the requested
    ///    delivery contract. The query's `CancelToken` aborts the
    ///    workers mid-stream (all atoms at once).
    /// 3. **Sequential** — else the plain `EnumMIS` iterator runs over
    ///    the session's warm memo.
    ///
    /// A live run that drains to natural completion deposits its answer
    /// list back into its session, so the *next* query touching that
    /// atom — of any task shape, over any containing graph — replays.
    pub fn run(&self, g: &Graph, query: Query) -> Response<'static> {
        let Query {
            task,
            triangulator,
            mode,
            budget,
            policy,
            trace,
            cancel,
        } = query;
        // The one typed execution decision: `Auto` consults the learned
        // cost profiles below; `Fixed` reproduces the pinned knobs bit
        // for bit. Either way the knobs are read through the policy.
        let auto = policy.is_auto();
        let delivery = policy.delivery();
        let threads = policy.threads();
        let planned = policy.planned();
        let backend = triangulator.name();
        // Best-k rides the ranked gear unless the escape hatch is pulled.
        // Ranked composition needs deterministic per-atom production
        // indices for its tie order, so the per-atom streams are forced
        // onto the deterministic contract (an `Ordered` replay cache
        // still serves them — lazily, never drained past the frontier).
        let ranked_measure = match task {
            Task::BestK { cost, .. } if policy.ranked() => Some(cost),
            _ => None,
        };
        if ranked_measure.is_some() {
            self.telemetry.ranked_queries.inc();
        }
        let tracer = trace.then(TraceBuilder::new);
        let query_span = tracer.as_ref().map(|t| {
            let span = t.root_span("query");
            span.attr("task", task.name());
            span.attr("dispatch", "engine");
            span
        });
        let effective_threads = match threads {
            0 => self.config.resolved_threads(),
            n => n,
        };
        if planned {
            let plan_span = query_span.as_ref().map(|q| q.child("plan"));
            let plan = self.plan_for(g);
            if let Some(span) = &plan_span {
                span.attr("atoms", plan.atoms.len().to_string());
                span.attr("unreduced", plan.is_unreduced().to_string());
                span.finish();
            }
            if !plan.is_unreduced() {
                let shared: Arc<dyn Triangulator> = Arc::from(triangulator);
                let last = plan.atoms.len().saturating_sub(1);
                // Profile-driven scheduling, `Auto` only. On a cold
                // profile every prediction is `None` and each decision
                // below collapses to today's `Fixed` behavior.
                let predictions: Vec<Option<Prediction>> = if auto {
                    plan.atoms
                        .iter()
                        .map(|atom| {
                            self.profiler.predict(
                                graph_fingerprint(&atom.graph),
                                backend,
                                self.store.as_deref(),
                            )
                        })
                        .collect()
                } else {
                    vec![None; plan.atoms.len()]
                };
                // The pool atom — the one the thread budget centers on,
                // and the one the composer varies fastest. Default (and
                // `Fixed` always): the last atom. `Auto`: the atom with
                // the largest predicted live wall, unknown counting as
                // infinite and ties breaking toward the later index, so
                // cold dispatch is exactly the fixed dispatch.
                let mut pool = last;
                if auto {
                    let mut best = 0u64;
                    for (i, p) in predictions.iter().enumerate() {
                        let wall = p.map(|p| p.wall_us).unwrap_or(u64::MAX);
                        if wall >= best {
                            best = wall;
                            pool = i;
                        }
                    }
                    if pool != last {
                        self.telemetry.auto_pool_overrides.inc();
                    }
                }
                // Parallel-vs-sequential threshold: when even the pool
                // atom's predicted wall is sub-threshold, pool setup
                // costs more than it buys — run everything sequential.
                // (`get`, not an index: a fully-chordal graph plans to
                // zero enumerated atoms.)
                let demoted = auto
                    && matches!(predictions.get(pool).copied().flatten().map(|p| p.wall_us),
                        Some(w) if w < AUTO_SEQUENTIAL_WALL_US);
                if demoted && effective_threads > 1 {
                    self.telemetry.auto_sequential_demotions.inc();
                }
                // The per-atom thread budget. `Fixed`: the pool (last)
                // atom takes the whole budget, the rest run sequential
                // — PR 4's rule, bit for bit. `Auto`: the budget splits
                // proportionally to predicted wall across the atoms
                // that can use it (see `split_thread_budget`).
                let atom_threads: Vec<usize> = if auto {
                    split_thread_budget(effective_threads, &predictions, pool, demoted)
                } else {
                    (0..plan.atoms.len())
                        .map(|i| if i == pool { effective_threads } else { 1 })
                        .collect()
                };
                // `stream_for` wants the *requested* count for the pool
                // atom under `Fixed` (`0` = engine default, resolved
                // there identically) — preserve the old call shape.
                let atom_threads_raw: Vec<usize> = if auto {
                    atom_threads.clone()
                } else {
                    (0..plan.atoms.len())
                        .map(|i| if i == pool { threads } else { 1 })
                        .collect()
                };
                // Cursor order. The composer varies the last child
                // fastest and lets child 0 trim its cache, so under
                // `Auto` + unordered + unranked the pool atom goes
                // last and the most result-rich atom goes first.
                // Ranked and deterministic queries keep plan order:
                // their emission order is part of the answer contract.
                let order: Vec<usize> =
                    if auto && ranked_measure.is_none() && delivery == Delivery::Unordered {
                        let mut others: Vec<usize> =
                            (0..plan.atoms.len()).filter(|&i| i != pool).collect();
                        others.sort_by_key(|&i| {
                            std::cmp::Reverse(predictions[i].map(|p| p.results).unwrap_or(0))
                        });
                        if pool < plan.atoms.len() {
                            others.push(pool);
                        }
                        others
                    } else {
                        (0..plan.atoms.len()).collect()
                    };
                let mut dispatch: Vec<AtomDispatch> = Vec::with_capacity(plan.atoms.len());
                let response = if let Some(measure) = ranked_measure {
                    let children = order
                        .iter()
                        .map(|&i| {
                            let atom = &plan.atoms[i];
                            let session =
                                self.session_keyed(&atom.graph, Box::new(Arc::clone(&shared)));
                            let stream = self.stream_for(
                                &session,
                                mode,
                                Delivery::Deterministic,
                                atom_threads_raw[i],
                                Some(&cancel),
                            );
                            dispatch.push(AtomDispatch {
                                index: i,
                                nodes: atom.graph.num_nodes(),
                                threads: atom_threads[i],
                                kind: DispatchKind::Ranked,
                            });
                            let stream = Self::maybe_traced(
                                stream,
                                query_span.as_ref(),
                                i,
                                atom.graph.num_nodes(),
                                DispatchKind::Ranked,
                            );
                            let floor = cost_floor(&atom.graph, measure);
                            let stream = RankedStream::over(stream, measure, floor)
                                .with_expansion_counter(Arc::clone(
                                    &self.telemetry.ranked_expansions,
                                ));
                            RankedAtom {
                                stream,
                                old_of: atom.old_of.clone(),
                            }
                        })
                        .collect();
                    let width_const = match measure {
                        CostMeasure::Width => plan.chordal_width(g),
                        CostMeasure::Fill => 0,
                    };
                    let composed = RankedComposed::new(g.clone(), measure, width_const, children);
                    let timed = FirstResultTimed::new(
                        Box::new(composed),
                        Arc::clone(&self.telemetry.ranked_first_result_us),
                    );
                    Response::over_ranked_stream(task, budget, cancel, Box::new(timed))
                } else {
                    let children = order
                        .iter()
                        .map(|&i| {
                            let atom = &plan.atoms[i];
                            let session =
                                self.session_keyed(&atom.graph, Box::new(Arc::clone(&shared)));
                            let stream = self.stream_for(
                                &session,
                                mode,
                                delivery,
                                atom_threads_raw[i],
                                Some(&cancel),
                            );
                            let kind = dispatch_kind(stream.served_kind(), atom_threads[i]);
                            dispatch.push(AtomDispatch {
                                index: i,
                                nodes: atom.graph.num_nodes(),
                                threads: atom_threads[i],
                                kind,
                            });
                            let stream = Self::maybe_traced(
                                stream,
                                query_span.as_ref(),
                                i,
                                atom.graph.num_nodes(),
                                kind,
                            );
                            AtomStream {
                                stream,
                                old_of: atom.old_of.clone(),
                            }
                        })
                        .collect();
                    let composed = ComposedStream::new(g.clone(), children);
                    Response::over_stream(task, budget, cancel, Box::new(composed))
                };
                dispatch.sort_by_key(|d| d.index);
                let response = response.with_dispatch(dispatch);
                return match (tracer, query_span) {
                    (Some(t), Some(s)) => response.with_trace(t, s),
                    _ => response,
                };
            }
        }
        let session = self.session_keyed(g, triangulator);
        // Whole-graph dispatch: `Auto` applies the same parallel-vs-
        // sequential threshold from the learned whole-graph profile.
        let (flat_raw, flat_eff) = if auto && effective_threads > 1 {
            match self
                .profiler
                .predict(graph_fingerprint(g), backend, self.store.as_deref())
            {
                Some(p) if p.wall_us < AUTO_SEQUENTIAL_WALL_US => {
                    self.telemetry.auto_sequential_demotions.inc();
                    (1, 1)
                }
                _ => (threads, effective_threads),
            }
        } else {
            (threads, effective_threads)
        };
        let mut dispatch: Vec<AtomDispatch> = Vec::with_capacity(1);
        let response = if let Some(measure) = ranked_measure {
            let stream = self.stream_for(
                &session,
                mode,
                Delivery::Deterministic,
                flat_raw,
                Some(&cancel),
            );
            dispatch.push(AtomDispatch {
                index: 0,
                nodes: g.num_nodes(),
                threads: flat_eff,
                kind: DispatchKind::Ranked,
            });
            let stream = Self::maybe_traced(
                stream,
                query_span.as_ref(),
                0,
                g.num_nodes(),
                DispatchKind::Ranked,
            );
            let floor = cost_floor(g, measure);
            let stream = RankedStream::over(stream, measure, floor)
                .with_expansion_counter(Arc::clone(&self.telemetry.ranked_expansions));
            let timed = FirstResultTimed::new(
                Box::new(stream),
                Arc::clone(&self.telemetry.ranked_first_result_us),
            );
            Response::over_ranked_stream(task, budget, cancel, Box::new(timed))
        } else {
            let stream = self.stream_for(&session, mode, delivery, flat_raw, Some(&cancel));
            let kind = dispatch_kind(stream.served_kind(), flat_eff);
            dispatch.push(AtomDispatch {
                index: 0,
                nodes: g.num_nodes(),
                threads: flat_eff,
                kind,
            });
            let stream = Self::maybe_traced(stream, query_span.as_ref(), 0, g.num_nodes(), kind);
            Response::over_stream(task, budget, cancel, stream)
        };
        let response = response.with_dispatch(dispatch);
        match (tracer, query_span) {
            (Some(t), Some(s)) => response.with_trace(t, s),
            _ => response,
        }
    }

    /// Wraps `stream` in a [`TracedStream`] under an `atom` span when the
    /// query is traced; the untraced path boxes the stream unchanged.
    /// The `dispatch` attribute records how the stream was actually
    /// served — the same [`DispatchKind`] the response's outcome
    /// reports (`ranked` for streams feeding a ranked frontier, whose
    /// `results` attribute then counts the frontier's expansions).
    fn maybe_traced(
        stream: EngineEnumeration,
        query_span: Option<&mintri_telemetry::SpanHandle>,
        index: usize,
        nodes: usize,
        kind: DispatchKind,
    ) -> Box<dyn TriangulationStream + 'static> {
        match query_span {
            Some(parent) => {
                let span = parent.child("atom");
                span.attr("index", index.to_string());
                span.attr("nodes", nodes.to_string());
                span.attr("dispatch", kind.name());
                Box::new(TracedStream::new(Box::new(stream), span))
            }
            None => Box::new(stream),
        }
    }

    /// The cached (or freshly computed) [`Plan`] for `g`. Planning is
    /// polynomial but not free (one MCS-M triangulation per
    /// decomposition split), and the engine exists for *repeated*
    /// traffic — so plans are memoized by graph fingerprint, with true
    /// equality verified on lookup, and the whole cache is dropped when
    /// it outgrows twice the session cap (plans are cheap to rebuild;
    /// LRU bookkeeping is not worth it here).
    fn plan_for(&self, g: &Graph) -> Arc<Plan> {
        let key = graph_fingerprint(g);
        {
            let plans = self.plans.lock().unwrap();
            if let Some(entries) = plans.get(&key) {
                if let Some((_, plan)) = entries.iter().find(|(pg, _)| pg == g) {
                    self.telemetry.plan_cache_hits.inc();
                    return Arc::clone(plan);
                }
            }
        }
        let plan = match self.hydrate_plan(g, key) {
            Some(plan) => plan,
            None => {
                let plan = Arc::new(Plan::of(g));
                self.telemetry.plans_computed.inc();
                if let Some(store) = &self.store {
                    store.put_plan(&plan_snapshot(g, key, &plan));
                }
                plan
            }
        };
        let mut plans = self.plans.lock().unwrap();
        // Planning ran outside the lock (it is polynomial but not free),
        // so a concurrent first query may have beaten us here — re-check
        // before inserting, or the bucket accumulates duplicates.
        if let Some(entries) = plans.get(&key) {
            if let Some((_, existing)) = entries.iter().find(|(pg, _)| pg == g) {
                self.telemetry.plan_cache_hits.inc();
                return Arc::clone(existing);
            }
        }
        if plans.len() >= self.config.max_sessions.max(1) * 2 {
            plans.clear();
        }
        plans
            .entry(key)
            .or_default()
            .push((g.clone(), Arc::clone(&plan)));
        plan
    }

    /// Loads a persisted plan snapshot for `g`, if the store holds one
    /// whose graph is *equal* (a fingerprint is an address, not a
    /// proof). The decomposition is taken as given; only the cheap parts
    /// (induced subgraphs, chordality) are re-derived.
    fn hydrate_plan(&self, g: &Graph, key: u64) -> Option<Arc<Plan>> {
        let store = self.store.as_ref()?;
        let start = Instant::now();
        let snap = match store.load_plan(key) {
            Some(snap) if snap.nodes as usize == g.num_nodes() && snap.edges == g.edges() => snap,
            _ => {
                self.telemetry.store_misses.inc();
                return None;
            }
        };
        let n = g.num_nodes();
        let sets = |sets: &[Vec<u32>]| -> Vec<NodeSet> {
            sets.iter()
                .map(|s| NodeSet::from_iter(n, s.iter().copied()))
                .collect()
        };
        let decomposition = mintri_separators::AtomDecomposition {
            components: sets(&snap.components),
            atoms: sets(&snap.atoms),
            separators: sets(&snap.separators),
        };
        let plan = Arc::new(Plan::from_decomposition(g, decomposition));
        self.telemetry.store_hits.inc();
        self.telemetry
            .store_hydrate_us
            .record_duration(start.elapsed());
        Some(plan)
    }

    /// The engine-wide memo counters: [`MsGraphStats`] summed over every
    /// live session (all graphs, atoms and backends). Watch `extends`
    /// stay flat across a query to prove it was served entirely from
    /// replayed answers — the per-atom analogue of
    /// [`GraphSession::stats`].
    pub fn memo_stats(&self) -> MsGraphStats {
        let sessions = self.sessions.lock().unwrap();
        let mut total = MsGraphStats::default();
        for entries in sessions.by_key.values() {
            for (_, session) in entries {
                let s = session.stats();
                total.crossing_computed += s.crossing_computed;
                total.crossing_cached += s.crossing_cached;
                total.extends += s.extends;
                total.separators_interned += s.separators_interned;
            }
        }
        total
    }

    /// The replay-aware stream behind every query: cached answers when
    /// the delivery contract allows, otherwise a live (parallel or
    /// sequential) run against the warm session memo.
    fn stream_for(
        &self,
        session: &Arc<GraphSession>,
        mode: PrintMode,
        delivery: Delivery,
        threads: usize,
        cancel: Option<&CancelToken>,
    ) -> EngineEnumeration {
        if let Some(answers) = session.replayable(delivery, mode) {
            self.telemetry.replay_hits.inc();
            return EngineEnumeration {
                profile: self.capture(session, RunKind::Replay),
                session: Arc::clone(session),
                source: Source::Cached { answers, next: 0 },
                recorded: None,
                spill: None,
                created: Instant::now(),
                wall: Some(Arc::clone(&self.telemetry.stream_wall_us)),
                #[cfg(feature = "parallel")]
                _cancel_hook: None,
            };
        }
        self.telemetry.replay_misses.inc();
        if let Some(hydrated) = self.hydrate_stream(session, mode, delivery) {
            return hydrated;
        }
        let threads = match threads {
            0 => self.config.resolved_threads(),
            n => n,
        };
        self.live_stream(session, mode, delivery, threads, cancel)
    }

    /// The disk-hydrate step of the dispatch order (replay →
    /// **disk-hydrate** → parallel → sequential): on a RAM replay miss
    /// with a store attached, probe the persistent tier for a recorded
    /// answer list whose order satisfies the query's delivery contract —
    /// the same compatibility rule [`GraphSession::replayable`] applies
    /// in RAM. A hit verifies graph equality (a fingerprint is an
    /// address, not a proof), re-interns the vertex-list separators into
    /// this session's `MsGraph`, deposits the list for future RAM
    /// replays, and serves a `Cached` stream — zero `Extend` calls, ever.
    /// Interning and deposit race concurrent hydrators safely: the
    /// session keeps exactly one list per key.
    fn hydrate_stream(
        &self,
        session: &Arc<GraphSession>,
        mode: PrintMode,
        delivery: Delivery,
    ) -> Option<EngineEnumeration> {
        let store = self.store.as_ref()?;
        let start = Instant::now();
        let fp = graph_fingerprint(&session.graph);
        let other = match mode {
            PrintMode::UponGeneration => PrintMode::UponPop,
            PrintMode::UponPop => PrintMode::UponGeneration,
        };
        // Probe order mirrors the RAM rule: deterministic queries accept
        // only their exact sequential schedule; unordered queries prefer
        // it but accept any complete recording.
        let probes: &[AnswerKey] = match delivery {
            Delivery::Deterministic => &[AnswerKey::Ordered(mode)],
            Delivery::Unordered => &[
                AnswerKey::Ordered(mode),
                AnswerKey::Unordered,
                AnswerKey::Ordered(other),
            ],
        };
        for &key in probes {
            let Some(snap) = store.load_answers(fp, session.backend, key.stored_order()) else {
                continue;
            };
            if snap.nodes as usize != session.graph.num_nodes()
                || snap.edges != session.graph.edges()
            {
                continue;
            }
            let n = session.graph.num_nodes();
            let answers: Vec<Vec<SepId>> = snap
                .answers
                .iter()
                .map(|answer| {
                    answer
                        .iter()
                        .map(|sep| {
                            session
                                .ms
                                .intern(NodeSet::from_iter(n, sep.iter().copied()))
                        })
                        .collect()
                })
                .collect();
            let answers = session.store_answers(key, answers);
            self.telemetry.store_hits.inc();
            self.telemetry
                .store_hydrate_us
                .record_duration(start.elapsed());
            return Some(EngineEnumeration {
                profile: self.capture(session, RunKind::Hydrate),
                session: Arc::clone(session),
                source: Source::Cached { answers, next: 0 },
                recorded: None,
                spill: None,
                created: Instant::now(),
                wall: Some(Arc::clone(&self.telemetry.stream_wall_us)),
                #[cfg(feature = "parallel")]
                _cancel_hook: None,
            });
        }
        self.telemetry.store_misses.inc();
        None
    }

    #[cfg(feature = "parallel")]
    fn live_stream(
        &self,
        session: &Arc<GraphSession>,
        mode: PrintMode,
        delivery: Delivery,
        threads: usize,
        cancel: Option<&CancelToken>,
    ) -> EngineEnumeration {
        if threads > 1 {
            let par = crate::ParallelEnumerator::from_msgraph_with_mode(
                Arc::clone(&session.ms),
                &EngineConfig {
                    threads,
                    delivery,
                    ..self.config.clone()
                },
                mode,
            );
            let cancel_hook = cancel.map(|token| token.on_cancel(par.abort_hook()));
            let key = match delivery {
                Delivery::Unordered => AnswerKey::Unordered,
                Delivery::Deterministic => AnswerKey::Ordered(mode),
            };
            return EngineEnumeration {
                profile: self.capture(session, RunKind::Live),
                session: Arc::clone(session),
                source: Source::Live(par),
                recorded: Some((key, Vec::new())),
                spill: self.spill_handle(),
                created: Instant::now(),
                wall: Some(Arc::clone(&self.telemetry.stream_wall_us)),
                _cancel_hook: cancel_hook,
            };
        }
        self.sequential_stream(session, mode)
    }

    #[cfg(not(feature = "parallel"))]
    fn live_stream(
        &self,
        session: &Arc<GraphSession>,
        mode: PrintMode,
        _delivery: Delivery,
        _threads: usize,
        _cancel: Option<&CancelToken>,
    ) -> EngineEnumeration {
        self.sequential_stream(session, mode)
    }

    fn sequential_stream(&self, session: &Arc<GraphSession>, mode: PrintMode) -> EngineEnumeration {
        EngineEnumeration {
            profile: self.capture(session, RunKind::Live),
            session: Arc::clone(session),
            source: Source::Sequential(Box::new(EnumMis::new(Arc::clone(&session.ms), mode))),
            recorded: Some((AnswerKey::Ordered(mode), Vec::new())),
            spill: self.spill_handle(),
            created: Instant::now(),
            wall: Some(Arc::clone(&self.telemetry.stream_wall_us)),
            #[cfg(feature = "parallel")]
            _cancel_hook: None,
        }
    }

    /// The write-through handle live streams carry: the store plus the
    /// spill counter, or `None` on a store-less engine.
    fn spill_handle(&self) -> Option<(Arc<Store>, Arc<Counter>)> {
        self.store
            .as_ref()
            .map(|store| (Arc::clone(store), Arc::clone(&self.telemetry.store_spills)))
    }

    /// The cost-profile deposit every engine stream carries: recorded at
    /// drop, keyed like the session it serves.
    fn capture(&self, session: &Arc<GraphSession>, kind: RunKind) -> Option<ProfileCapture> {
        Some(ProfileCapture {
            profiler: Arc::clone(&self.profiler),
            store: self.store.clone(),
            fingerprint: graph_fingerprint(&session.graph),
            backend: session.backend,
            nodes: session.graph.num_nodes() as u32,
            kind,
            results: 0,
            first_us: None,
            extends_start: session.stats().extends as u64,
            completed: false,
        })
    }
}

/// Maps how a stream was served onto the outcome vocabulary: replays
/// and hydrations report themselves, live runs report by thread count.
fn dispatch_kind(served: RunKind, threads: usize) -> DispatchKind {
    match served {
        RunKind::Replay => DispatchKind::Replay,
        RunKind::Hydrate => DispatchKind::Hydrate,
        RunKind::Live => {
            if threads > 1 && cfg!(feature = "parallel") {
                DispatchKind::Parallel
            } else {
                DispatchKind::Sequential
            }
        }
    }
}

/// Splits `effective` worker threads across a plan's atoms under
/// `ExecPolicy::Auto`, proportionally to predicted live wall.
///
/// The pool atom always anchors the budget. Other atoms join the split
/// only when their predicted wall is known, above the sequential
/// threshold, and within 4× of the pool's — a wide pool next to a
/// near-instant atom should not give the fast atom idle workers. Cold
/// profiles (no predictions) therefore reduce to "the pool atom takes
/// everything", which is exactly the `Fixed` dispatch.
fn split_thread_budget(
    effective: usize,
    predictions: &[Option<Prediction>],
    pool: usize,
    demoted: bool,
) -> Vec<usize> {
    let mut out = vec![1usize; predictions.len()];
    if demoted || effective <= 1 || predictions.is_empty() {
        return out;
    }
    out[pool] = effective;
    let pool_wall = match predictions[pool] {
        Some(p) => p.wall_us,
        None => return out,
    };
    let sharers: Vec<(usize, u64)> = predictions
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != pool)
        .filter_map(|(i, p)| p.map(|p| (i, p.wall_us)))
        .filter(|&(_, w)| w >= AUTO_SEQUENTIAL_WALL_US && w.saturating_mul(4) >= pool_wall)
        .collect();
    if sharers.is_empty() {
        return out;
    }
    let total = pool_wall + sharers.iter().map(|&(_, w)| w).sum::<u64>();
    let mut remaining = effective.saturating_sub(1); // the pool keeps ≥ 1
    for &(i, w) in &sharers {
        if remaining == 0 {
            break;
        }
        let share = ((effective as u64).saturating_mul(w) / total.max(1)).max(1) as usize;
        let share = share.min(remaining);
        out[i] = share;
        remaining -= share;
    }
    out[pool] = remaining + 1;
    out
}

/// Records the delay from ranked-stream creation to its first emitted
/// result onto `mintri_engine_ranked_first_result_microseconds` — the
/// headline number of the ranked gear (how fast does the best answer
/// surface, regardless of how big the space is). Two clock reads total
/// (construction + first pull) and one histogram write; the PR 6
/// hot-path invariant (write-only atomics) holds.
struct FirstResultTimed {
    inner: Box<dyn TriangulationStream + 'static>,
    created: Instant,
    hist: Arc<Histogram>,
    fired: bool,
}

impl FirstResultTimed {
    fn new(inner: Box<dyn TriangulationStream + 'static>, hist: Arc<Histogram>) -> Self {
        FirstResultTimed {
            inner,
            created: Instant::now(),
            hist,
            fired: false,
        }
    }
}

impl TriangulationStream for FirstResultTimed {
    fn next_tri(&mut self) -> Option<Triangulation> {
        let tri = self.inner.next_tri();
        if tri.is_some() && !self.fired {
            self.fired = true;
            self.hist.record_duration(self.created.elapsed());
        }
        tri
    }

    fn finished(&self) -> bool {
        self.inner.finished()
    }

    fn enum_stats(&self) -> Option<EnumMisStats> {
        self.inner.enum_stats()
    }

    fn is_replay(&self) -> bool {
        self.inner.is_replay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintri_core::query::{CostMeasure, ExecPolicy, QueryItem};
    use mintri_core::{
        MinimalTriangulationsEnumerator, ProperTreeDecompositions, TdEnumerationMode,
    };

    fn enumerate_edges(engine: &Engine, g: &Graph) -> (bool, Vec<Vec<(u32, u32)>>) {
        let response = engine.run(g, Query::enumerate());
        let replayed = response.is_replay();
        let edges = response
            .filter_map(QueryItem::into_triangulation)
            .map(|t| t.graph.edges())
            .collect();
        (replayed, edges)
    }

    #[test]
    fn repeat_enumeration_replays_from_cache() {
        let engine = Engine::new();
        let g = Graph::cycle(7);
        let (cold_replay, first) = enumerate_edges(&engine, &g);
        assert!(!cold_replay);
        assert_eq!(first.len(), 42);
        let session = engine.session(&g);
        let extends_after_first = session.stats().extends;
        let (warm_replay, second) = enumerate_edges(&engine, &g);
        assert!(warm_replay);
        assert_eq!(first, second, "replay preserves emission order");
        assert_eq!(
            session.stats().extends,
            extends_after_first,
            "replay must not invoke Extend"
        );
        assert_eq!(engine.sessions_cached(), 1);
    }

    #[test]
    fn incomplete_runs_do_not_poison_the_cache() {
        let engine = Engine::new();
        let g = Graph::cycle(9);
        let mut response = engine.run(&g, Query::enumerate());
        let _ = response.next();
        drop(response); // abandoned early: no cached answer list
        assert!(engine.session(&g).cached_answers().is_none());
        // a full run afterwards still works and caches
        let (_, edges) = enumerate_edges(&engine, &g);
        assert_eq!(
            edges.len(),
            MinimalTriangulationsEnumerator::new(&g).count()
        );
        assert!(engine.session(&g).cached_answers().is_some());
    }

    #[test]
    fn session_store_evicts_least_recently_used() {
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            max_sessions: 2,
            ..EngineConfig::default()
        });
        let (a, b, c) = (Graph::cycle(4), Graph::cycle(5), Graph::cycle(6));
        let sa = engine.session(&a);
        let _sb = engine.session(&b);
        let sa2 = engine.session(&a); // touch a: b becomes the LRU
        assert!(Arc::ptr_eq(&sa, &sa2));
        let _sc = engine.session(&c); // evicts b
        assert_eq!(engine.sessions_cached(), 2);
        assert!(Arc::ptr_eq(&sa, &engine.session(&a)), "a stayed warm");
        // b was evicted: a fresh session comes back for it
        let _ = engine.session(&b);
        assert_eq!(engine.sessions_cached(), 2);
    }

    #[test]
    fn explicit_eviction_frees_sessions() {
        let engine = Engine::new();
        let g = Graph::cycle(5);
        let s1 = engine.session(&g);
        engine.evict(&g);
        assert_eq!(engine.sessions_cached(), 0);
        assert!(!Arc::ptr_eq(&s1, &engine.session(&g)));
        engine.clear_sessions();
        assert_eq!(engine.sessions_cached(), 0);
    }

    #[test]
    fn sessions_are_fingerprint_keyed() {
        let engine = Engine::new();
        let a = Graph::cycle(5);
        let b = Graph::cycle(6);
        let _ = engine.run(&a, Query::enumerate()).count();
        let _ = engine.run(&b, Query::enumerate()).count();
        assert_eq!(engine.sessions_cached(), 2);
        let s1 = engine.session(&a);
        let s2 = engine.session(&Graph::cycle(5));
        assert!(Arc::ptr_eq(&s1, &s2), "equal graphs share a session");
    }

    #[test]
    fn sessions_are_backend_keyed() {
        let engine = Engine::new();
        let g = Graph::cycle(6);
        let n = engine
            .run(&g, Query::enumerate().triangulator(Box::new(McsM)))
            .count();
        let m = engine
            .run(
                &g,
                Query::enumerate().triangulator(Box::new(mintri_triangulate::LexM)),
            )
            .count();
        assert_eq!(n, m, "backends agree on the answer set");
        assert_eq!(
            engine.sessions_cached(),
            2,
            "distinct backends must not alias one session"
        );
    }

    #[test]
    fn best_k_matches_core_ranked() {
        let engine = Engine::new();
        let g = Graph::cycle(7);
        let best = engine
            .run(&g, Query::best_k(3, CostMeasure::Fill))
            .triangulations();
        assert_eq!(best.len(), 3);
        assert!(best.iter().all(|t| t.fill_count() == 4));
    }

    #[test]
    fn decompose_matches_sequential_pipeline() {
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let g = Graph::cycle(6);
        let mut via_engine: Vec<_> = engine
            .run(&g, Query::decompose(TdEnumerationMode::AllDecompositions))
            .filter_map(QueryItem::into_decomposition)
            .map(|d| (d.num_bags(), d.width()))
            .collect();
        let mut via_core: Vec<_> = ProperTreeDecompositions::new(&g)
            .map(|d| (d.num_bags(), d.width()))
            .collect();
        via_engine.sort();
        via_core.sort();
        assert_eq!(via_engine, via_core);
    }

    #[test]
    fn planned_queries_key_sessions_per_atom() {
        // two cycles glued at a cut vertex → two atom sessions, no
        // whole-graph session
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let g = Graph::from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 3),
            ],
        );
        let n = engine.run(&g, Query::enumerate()).count();
        assert_eq!(n, 2 * 14, "C4 × C6 product");
        assert_eq!(
            engine.sessions_cached(),
            2,
            "one session per non-trivial atom, none for the whole graph"
        );
        // the same query replays both atoms
        let warm = engine.run(&g, Query::enumerate());
        assert!(warm.is_replay(), "all atom sessions replay");
        assert_eq!(warm.count(), 28);
    }

    #[test]
    fn atom_sessions_are_shared_across_different_graphs() {
        // g1 and g2 are different graphs sharing the C5 atom on {0..4}
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let c5 = &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let mut g1 = Graph::from_edges(8, c5);
        for e in [(0, 5), (5, 6), (6, 7), (7, 0)] {
            g1.add_edge(e.0, e.1);
        }
        let mut g2 = Graph::from_edges(7, c5);
        for e in [(0, 5), (5, 6), (6, 0)] {
            g2.add_edge(e.0, e.1);
        }
        let n1 = engine.run(&g1, Query::enumerate()).count();
        assert_eq!(n1, 5 * 2, "C5 × C4");
        let extends_after_g1 = engine.memo_stats().extends;

        // g2's C5 atom replays g1's session: only the triangle (chordal,
        // no stream) and... the C5 is g2's only non-trivial atom, so the
        // whole query is a replay and extends stay flat.
        let warm = engine.run(&g2, Query::enumerate());
        assert!(
            warm.is_replay(),
            "a different graph sharing the atom replays its session"
        );
        assert_eq!(warm.count(), 5);
        assert_eq!(
            engine.memo_stats().extends,
            extends_after_g1,
            "the shared atom session served without any new Extend"
        );
    }

    #[test]
    fn warm_sessions_share_crossing_work_across_queries() {
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let g = Graph::cycle(8);
        // Different query kinds against one session: enumeration first...
        let _ = engine.run(&g, Query::enumerate()).count();
        let computed_once = engine.session(&g).stats().crossing_computed;
        assert!(computed_once > 0);
        // ...then best-k, which replays and computes nothing new.
        let _ = engine.run(&g, Query::best_k(2, CostMeasure::Width)).count();
        assert_eq!(engine.session(&g).stats().crossing_computed, computed_once);
    }

    #[test]
    fn ranked_and_decompose_queries_replay_without_extends() {
        // Best-k and decompose queries must be served from a
        // completed-answer replay — zero Extend calls, `is_replay()`
        // true — once some earlier query ran the enumeration to
        // completion. A single-threaded engine deposits an *ordered*
        // answer cache, which is what the ranked gear's deterministic
        // per-atom streams can replay.
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let g = Graph::cycle(7);

        // Cold best-k query: the ranked gear stops after ~k pulls
        // (output-sensitive), so it runs live and deposits nothing.
        let mut cold = engine.run(&g, Query::best_k(3, CostMeasure::Fill));
        assert!(!cold.is_replay());
        assert_eq!(cold.triangulations().len(), 3);
        let cold_scanned = cold.outcome().scanned;
        assert!(
            cold_scanned < 42,
            "ranked best-k must not drain C7's 42 results (scanned {cold_scanned})"
        );

        // A full enumeration completes and deposits the ordered answer
        // list for this session.
        assert_eq!(engine.run(&g, Query::enumerate()).count(), 42);
        let extends_after_drain = engine.session(&g).stats().extends;
        assert!(extends_after_drain > 0);

        // Warm best-k: replay, zero new Extends.
        let mut warm = engine.run(&g, Query::best_k(3, CostMeasure::Fill));
        assert!(warm.is_replay(), "ranked queries must replay warm sessions");
        let warm_winners = warm.triangulations();
        assert_eq!(warm_winners.len(), 3);
        assert!(warm.outcome().replayed);
        assert_eq!(engine.session(&g).stats().extends, extends_after_drain);

        // Ranked and exhaustive gears agree on the winners bit for bit.
        let mut exhaustive = engine.run(
            &g,
            Query::best_k(3, CostMeasure::Fill).policy(ExecPolicy::fixed().with_ranked(false)),
        );
        let fills = |ts: &[Triangulation]| ts.iter().map(|t| t.fill.clone()).collect::<Vec<_>>();
        assert_eq!(fills(&warm_winners), fills(&exhaustive.triangulations()));

        // Warm decompose: same replay, still zero new Extends.
        let warm_decompose = engine.run(&g, Query::decompose(TdEnumerationMode::OnePerClass));
        assert!(
            warm_decompose.is_replay(),
            "decompose queries must replay warm sessions"
        );
        assert_eq!(warm_decompose.count(), 42);
        assert_eq!(engine.session(&g).stats().extends, extends_after_drain);
    }

    #[test]
    fn telemetry_counts_sessions_replays_and_plans() {
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let g = Graph::cycle(6);
        let t = engine.telemetry();
        let _ = engine.run(&g, Query::enumerate()).count();
        assert_eq!(t.sessions_built.get(), 1);
        assert_eq!(t.replay_misses.get(), 1);
        assert_eq!(t.replay_hits.get(), 0);
        assert_eq!(t.plans_computed.get(), 1);
        let _ = engine.run(&g, Query::enumerate()).count();
        assert_eq!(t.sessions_built.get(), 1, "warm query builds nothing");
        assert_eq!(t.replay_hits.get(), 1);
        assert_eq!(t.plan_cache_hits.get(), 1);
        assert_eq!(t.session_build_us.count(), 1);
        assert_eq!(t.stream_wall_us.count(), 2, "one record per stream drop");
        engine.clear_sessions();
        assert_eq!(t.sessions_evicted.get(), 1);
        assert_eq!(t.sessions_live.get(), 0);
        engine.refresh_gauges();
        let text = engine.registry().render_prometheus();
        assert!(text.contains("mintri_engine_replay_hits_total 1"));
        assert!(text.contains("mintri_engine_sessions_built_total 1"));
    }

    #[test]
    fn traced_engine_run_reports_replay_dispatch() {
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let g = Graph::cycle(6);
        let _ = engine.run(&g, Query::enumerate()).count();
        let mut warm = engine.run(&g, Query::enumerate().traced(true));
        assert_eq!(warm.by_ref().count(), 14);
        let outcome = warm.outcome();
        let trace = outcome.trace.expect("traced query must attach a trace");
        let query = trace.find("query").expect("query span");
        assert_eq!(query.attr("dispatch"), Some("engine"));
        assert_eq!(query.attr("task"), Some("enumerate"));
        assert!(trace.find("plan").is_some());
        let atom = trace.find("atom").expect("atom span");
        assert_eq!(atom.attr("dispatch"), Some("replay"));
        assert_eq!(atom.attr("results"), Some("14"));
        let untraced = engine.run(&g, Query::enumerate());
        assert_eq!(untraced.count(), 14);
    }

    #[test]
    fn traced_ranked_best_k_reports_ranked_dispatch_and_counters() {
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let g = Graph::cycle(6);
        let t = engine.telemetry();
        let mut resp = engine.run(&g, Query::best_k(3, CostMeasure::Fill).traced(true));
        assert_eq!(resp.by_ref().count(), 3);
        let outcome = resp.outcome();
        let trace = outcome.trace.expect("traced query must attach a trace");
        let atom = trace.find("atom").expect("atom span");
        assert_eq!(atom.attr("dispatch"), Some("ranked"));
        assert_eq!(t.ranked_queries.get(), 1);
        assert!(
            t.ranked_expansions.get() >= 3,
            "ranked frontier must have pulled at least k results (got {})",
            t.ranked_expansions.get()
        );
        assert_eq!(
            t.ranked_first_result_us.count(),
            1,
            "one first-result delay record per ranked stream"
        );
        // The exhaustive escape hatch is not a ranked query.
        let _ = engine
            .run(
                &g,
                Query::best_k(3, CostMeasure::Fill).policy(ExecPolicy::fixed().with_ranked(false)),
            )
            .count();
        assert_eq!(t.ranked_queries.get(), 1);
    }

    #[test]
    fn unordered_replay_never_serves_deterministic_queries() {
        #[cfg(feature = "parallel")]
        {
            let engine = Engine::with_config(EngineConfig {
                threads: 4,
                ..EngineConfig::default()
            });
            let g = Graph::cycle(7);
            // Record an unordered run (a race order) into the cache.
            let n = engine
                .run(
                    &g,
                    Query::enumerate().policy(ExecPolicy::fixed().with_threads(4)),
                )
                .count();
            assert_eq!(n, 42);
            // A deterministic query must NOT replay it: order is a contract.
            let det = engine.run(
                &g,
                Query::enumerate().policy(
                    ExecPolicy::fixed()
                        .with_threads(4)
                        .with_delivery(Delivery::Deterministic),
                ),
            );
            assert!(
                !det.is_replay(),
                "an unordered recording cannot serve a deterministic query"
            );
            let order: Vec<_> = det
                .filter_map(QueryItem::into_triangulation)
                .map(|t| t.graph.edges())
                .collect();
            let reference: Vec<_> = MinimalTriangulationsEnumerator::new(&g)
                .map(|t| t.graph.edges())
                .collect();
            assert_eq!(order, reference);
            // …and the deterministic run's deposit now serves both contracts.
            assert!(engine
                .run(
                    &g,
                    Query::enumerate().policy(
                        ExecPolicy::fixed()
                            .with_threads(4)
                            .with_delivery(Delivery::Deterministic)
                    )
                )
                .is_replay());
        }
    }

    /// One query's dispatch record as `(kind, threads)` pairs, with the
    /// drained result count.
    fn dispatch_of(engine: &Engine, g: &Graph, q: Query) -> (usize, Vec<(DispatchKind, usize)>) {
        let mut resp = engine.run(g, q);
        let n = resp.by_ref().count();
        let outcome = resp.outcome();
        (
            n,
            outcome
                .dispatch
                .iter()
                .map(|d| (d.kind, d.threads))
                .collect(),
        )
    }

    #[test]
    fn outcome_reports_per_atom_dispatch() {
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let g = Graph::cycle(6);
        let (n, cold) = dispatch_of(&engine, &g, Query::enumerate());
        assert_eq!(n, 14);
        assert_eq!(cold, vec![(DispatchKind::Sequential, 1)]);
        let (_, warm) = dispatch_of(&engine, &g, Query::enumerate());
        assert_eq!(warm, vec![(DispatchKind::Replay, 1)]);
        let mut ranked = engine.run(&g, Query::best_k(2, CostMeasure::Fill));
        assert_eq!(ranked.by_ref().count(), 2);
        assert_eq!(ranked.outcome().dispatch.len(), 1);
        assert_eq!(ranked.outcome().dispatch[0].kind, DispatchKind::Ranked);
    }

    #[test]
    fn cold_auto_dispatch_matches_fixed() {
        // With no profile data, Auto must collapse to exactly the Fixed
        // schedule: same pool placement, same thread grants, same
        // results. Two fresh engines so neither run warms the other.
        // C4 and C6 glued at a cut vertex → a two-atom plan.
        let g = Graph::from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
                (8, 3),
            ],
        );
        for threads in [1, 4] {
            let auto_engine = Engine::with_config(EngineConfig {
                threads,
                ..EngineConfig::default()
            });
            let fixed_engine = Engine::with_config(EngineConfig {
                threads,
                ..EngineConfig::default()
            });
            let (an, auto) = dispatch_of(&auto_engine, &g, Query::enumerate());
            let (fnn, fixed) = dispatch_of(
                &fixed_engine,
                &g,
                Query::enumerate().policy(ExecPolicy::fixed()),
            );
            assert_eq!(an, fnn);
            assert_eq!(auto, fixed, "cold Auto diverged at threads={threads}");
            assert_eq!(auto_engine.telemetry().auto_pool_overrides.get(), 0);
            assert_eq!(auto_engine.telemetry().auto_sequential_demotions.get(), 0);
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn warm_profile_demotes_cheap_graphs_to_sequential() {
        let engine = Engine::with_config(EngineConfig {
            threads: 4,
            ..EngineConfig::default()
        });
        let g = Graph::cycle(7);
        // Teach the profiler a known-cheap history directly (a wall
        // measured in real time would make this test build-speed
        // dependent): one completed live run, 50µs wall.
        engine.profiler().record_run(
            graph_fingerprint(&g),
            "MCS_M",
            g.num_nodes() as u32,
            crate::profile::RunRecord {
                kind: crate::profile::RunKind::Live,
                completed: true,
                results: 42,
                first_us: Some(1),
                wall_us: 50,
                extends: 60,
            },
            None,
        );
        assert_eq!(
            engine.predicted_wall_us(&g, "MCS_M"),
            Some(50),
            "the recorded run must leave a prediction behind"
        );
        let (n, warm) = dispatch_of(&engine, &g, Query::enumerate());
        assert_eq!(n, 42);
        assert_eq!(
            warm,
            vec![(DispatchKind::Sequential, 1)],
            "a known-cheap atom must be demoted off the pool"
        );
        assert!(engine.telemetry().auto_sequential_demotions.get() >= 1);
        // Fixed still takes the pool: the demotion is an Auto decision.
        engine.clear_sessions();
        let (_, fixed) = dispatch_of(
            &engine,
            &g,
            Query::enumerate().policy(ExecPolicy::fixed().with_threads(4)),
        );
        assert_eq!(fixed, vec![(DispatchKind::Parallel, 4)]);
    }

    #[test]
    fn auto_survives_a_plan_with_zero_enumerated_atoms() {
        // A chordal graph reduces to no non-trivial atoms; Auto's
        // prediction bookkeeping must cope with the empty plan.
        let engine = Engine::new();
        let g = Graph::cycle(3);
        let mut resp = engine.run(&g, Query::enumerate());
        assert_eq!(resp.by_ref().count(), 1);
        assert!(resp.outcome().dispatch.is_empty());
    }

    #[test]
    fn profile_views_surface_recorded_runs() {
        let engine = Engine::with_config(EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        });
        let g = Graph::cycle(6);
        assert_eq!(engine.run(&g, Query::enumerate()).count(), 14);
        let views = engine.profile_views();
        assert_eq!(views.len(), 1);
        let v = &views[0];
        assert_eq!(v.backend, "MCS_M");
        assert_eq!(v.live_runs, 1);
        assert_eq!(v.results_total, 14);
        assert_eq!(v.predicted_results, 14);
        // A replayed run counts as a hit, not a live observation.
        assert_eq!(engine.run(&g, Query::enumerate()).count(), 14);
        let views = engine.profile_views();
        assert_eq!(views[0].live_runs, 1);
        assert_eq!(views[0].replay_hits, 1);
    }
}

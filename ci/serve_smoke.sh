#!/usr/bin/env bash
# Serving smoke suite: boots the release `mintri serve` binary, drives
# the whole HTTP surface with curl, asserts the warm-replay contract
# (`"is_replay":true` on the second identical query), proves malformed
# input answers a structured 400 without killing the server, and fails
# on any non-2xx or on a leaked server process.
#
# Usage: ci/serve_smoke.sh [BINARY]   (default target/release/mintri)
set -euo pipefail

BIN=${1:-target/release/mintri}
PORT=${MINTRI_SMOKE_PORT:-7765}
ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR"

fail() { echo "SERVE SMOKE FAILED: $*" >&2; exit 1; }

[ -x "$BIN" ] || fail "$BIN is not an executable (build release first)"

"$BIN" serve --addr "$ADDR" --max-sessions 16 &
SERVER_PID=$!
cleanup() {
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

# Wait for the server to come up (and notice if it died on the spot).
up=""
for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server process died during startup"
    sleep 0.2
done
[ -n "$up" ] || fail "server never answered /healthz"

echo "== healthz"
curl -sf "$BASE/healthz" | grep -q '"status":"ok"' || fail "healthz did not answer ok"

echo "== upload graph"
GRAPH='{"nodes":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]]}'
GID=$(curl -sf -X POST "$BASE/v1/graphs" -d "$GRAPH" | sed -n 's/.*"graph_id":"\([^"]*\)".*/\1/p')
[ -n "$GID" ] || fail "upload returned no graph_id"
echo "   graph_id=$GID"

ENUM="{\"graph_id\":\"$GID\",\"query\":{\"task\":{\"type\":\"enumerate\"}}}"
BESTK="{\"graph_id\":\"$GID\",\"query\":{\"task\":{\"type\":\"best_k\",\"k\":2,\"cost\":\"width\"}}}"

echo "== cold enumerate"
COLD=$(curl -sf -X POST "$BASE/v1/query" -d "$ENUM")
echo "$COLD" | grep -q '"count":14'        || fail "C6 must have 14 minimal triangulations: $COLD"
echo "$COLD" | grep -q '"is_replay":false' || fail "first query must compute: $COLD"

echo "== best-k"
curl -sf -X POST "$BASE/v1/query" -d "$BESTK" | grep -q '"count":2' || fail "best-k must return 2 items"

echo "== warm replay"
WARM=$(curl -sf -X POST "$BASE/v1/query" -d "$ENUM")
echo "$WARM" | grep -q '"is_replay":true' || fail "second identical query must replay: $WARM"

echo "== batch"
BATCH=$(curl -sf -X POST "$BASE/v1/batch" -d "{\"queries\":[$ENUM,$BESTK]}")
echo "$BATCH" | grep -q '"count":2' || fail "batch must answer both queries: $BATCH"

echo "== malformed input answers a structured 400"
CODE=$(curl -s -o /tmp/smoke_400.json -w '%{http_code}' -X POST "$BASE/v1/query" -d '{definitely not json')
[ "$CODE" = "400" ] || fail "malformed JSON must answer 400, got $CODE"
grep -q '"error"' /tmp/smoke_400.json || fail "400 body must be structured"
curl -sf "$BASE/healthz" >/dev/null || fail "server must survive malformed input"

echo "== stats"
curl -sf "$BASE/v1/stats" | grep -q '"sessions":' || fail "stats must report sessions"

echo "== clean shutdown"
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
kill -0 "$SERVER_PID" 2>/dev/null && fail "server process leaked after shutdown"
trap - EXIT

echo "SERVE SMOKE OK"

#!/usr/bin/env bash
# Serving smoke suite: boots the release `mintri serve` binary, drives
# the whole HTTP surface with curl, asserts the warm-replay contract
# (`"is_replay":true` on the second identical query) and the ranked
# best-k contract (output-sensitive scan by default, `"ranked": false`
# forces the exhaustive scan, identical winners either way), checks the
# observability surface (`/v1/metrics` counters advance, replay hits
# and ranked queries register, a deliberately slow best-k lands in the
# slow-query ring, and a `"trace": true` response round-trips through
# the core JSON parser via `bench_check --parse`), asserts `/v1/stats`
# surfaces the learned per-atom cost profile (and that the stats
# document itself round-trips `bench_check --parse`), proves malformed
# input answers a structured 400 without killing the server, and fails
# on any non-2xx or on a leaked server process.
#
# A second leg reboots the server with `--store-dir`: a query is warmed,
# the process is SIGTERMed once the write-behind snapshots are
# published, and the restarted server must answer the first repeat query
# with `"is_replay":true` (graph registry, plan and answer cache all
# hydrated from disk) with the store-hit counters advancing.
#
# Usage: ci/serve_smoke.sh [BINARY] [BENCH_CHECK]
#        (defaults target/release/mintri, bench_check next to BINARY)
set -euo pipefail

BIN=${1:-target/release/mintri}
BENCH_CHECK=${2:-$(dirname "${1:-target/release/mintri}")/bench_check}
PORT=${MINTRI_SMOKE_PORT:-7765}
ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR"

fail() { echo "SERVE SMOKE FAILED: $*" >&2; exit 1; }

[ -x "$BIN" ] || fail "$BIN is not an executable (build release first)"

# --slow-query-ms 0 makes every query "slow" so the slow-query ring is
# deterministic to assert on.
"$BIN" serve --addr "$ADDR" --max-sessions 16 --slow-query-ms 0 &
SERVER_PID=$!
cleanup() {
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

# Wait for the server to come up (and notice if it died on the spot).
up=""
for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
    kill -0 "$SERVER_PID" 2>/dev/null || fail "server process died during startup"
    sleep 0.2
done
[ -n "$up" ] || fail "server never answered /healthz"

echo "== healthz"
curl -sf "$BASE/healthz" | grep -q '"status":"ok"' || fail "healthz did not answer ok"

echo "== upload graph"
GRAPH='{"nodes":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]]}'
GID=$(curl -sf -X POST "$BASE/v1/graphs" -d "$GRAPH" | sed -n 's/.*"graph_id":"\([^"]*\)".*/\1/p')
[ -n "$GID" ] || fail "upload returned no graph_id"
echo "   graph_id=$GID"

ENUM="{\"graph_id\":\"$GID\",\"query\":{\"task\":{\"type\":\"enumerate\"}}}"
# Deterministic delivery pins the exhaustive gear's tie-break order so
# the winners below are comparable across gears.
BESTK="{\"graph_id\":\"$GID\",\"query\":{\"task\":{\"type\":\"best_k\",\"k\":2,\"cost\":\"width\"},\"delivery\":\"deterministic\"}}"

echo "== cold enumerate"
COLD=$(curl -sf -X POST "$BASE/v1/query" -d "$ENUM")
echo "$COLD" | grep -q '"count":14'        || fail "C6 must have 14 minimal triangulations: $COLD"
echo "$COLD" | grep -q '"is_replay":false' || fail "first query must compute: $COLD"

echo "== best-k (ranked gear, the wire default)"
RANKED_RESP=$(curl -sf -X POST "$BASE/v1/query" -d "$BESTK")
echo "$RANKED_RESP" | grep -q '"count":2' || fail "best-k must return 2 items: $RANKED_RESP"
# The ranked gear is output-sensitive: the scan stops at k winners
# instead of draining C6's 14 triangulations.
echo "$RANKED_RESP" | grep -q '"scanned":2' || fail "ranked best-k must scan only k results: $RANKED_RESP"
echo "$RANKED_RESP" | grep -q '"completed":true' || fail "ranked best-k must prove its winners: $RANKED_RESP"

echo "== best-k (\"ranked\": false forces the exhaustive scan)"
BESTK_EXH="{\"graph_id\":\"$GID\",\"query\":{\"task\":{\"type\":\"best_k\",\"k\":2,\"cost\":\"width\"},\"delivery\":\"deterministic\",\"ranked\":false}}"
EXH_RESP=$(curl -sf -X POST "$BASE/v1/query" -d "$BESTK_EXH")
echo "$EXH_RESP" | grep -q '"count":2' || fail "exhaustive best-k must return 2 items: $EXH_RESP"
echo "$EXH_RESP" | grep -q '"scanned":14' || fail "exhaustive best-k must scan all 14 results: $EXH_RESP"
# Same winners either way: every minimal triangulation of C6 has width 2.
RANKED_ITEMS=$(echo "$RANKED_RESP" | sed -n 's/.*"items":\(\[.*\]\),"count".*/\1/p')
EXH_ITEMS=$(echo "$EXH_RESP" | sed -n 's/.*"items":\(\[.*\]\),"count".*/\1/p')
[ -n "$RANKED_ITEMS" ] || fail "ranked best-k response must carry items: $RANKED_RESP"
[ "$RANKED_ITEMS" = "$EXH_ITEMS" ] || fail "ranked and exhaustive winners must agree: $RANKED_ITEMS vs $EXH_ITEMS"

echo "== warm replay"
WARM=$(curl -sf -X POST "$BASE/v1/query" -d "$ENUM")
echo "$WARM" | grep -q '"is_replay":true' || fail "second identical query must replay: $WARM"

echo "== batch"
BATCH=$(curl -sf -X POST "$BASE/v1/batch" -d "{\"queries\":[$ENUM,$BESTK]}")
echo "$BATCH" | grep -q '"count":2' || fail "batch must answer both queries: $BATCH"

echo "== traced query returns a span tree that the core parser accepts"
TRACED="{\"graph_id\":\"$GID\",\"query\":{\"task\":{\"type\":\"enumerate\"},\"trace\":true}}"
curl -sf -X POST "$BASE/v1/query" -d "$TRACED" > /tmp/smoke_trace.json
grep -q '"trace"' /tmp/smoke_trace.json || fail "trace:true response must carry a trace"
grep -q '"name":"atom"' /tmp/smoke_trace.json || fail "trace must contain per-atom spans"
if [ -x "$BENCH_CHECK" ]; then
    "$BENCH_CHECK" --parse /tmp/smoke_trace.json || fail "traced response must round-trip through the core JSON parser"
else
    fail "$BENCH_CHECK not found (build bench_check alongside the serve binary)"
fi

echo "== metrics"
curl -sf "$BASE/v1/metrics" > /tmp/smoke_metrics.txt
grep -q '^# TYPE mintri_http_requests_total counter' /tmp/smoke_metrics.txt \
    || fail "metrics must expose typed request counters"
QUERY_REQS=$(awk '$1 == "mintri_http_requests_total{endpoint=\"/v1/query\"}" {print $2}' /tmp/smoke_metrics.txt)
[ -n "$QUERY_REQS" ] || fail "metrics must count /v1/query requests"
awk -v v="$QUERY_REQS" 'BEGIN { exit !(v + 0 >= 4) }' \
    || fail "/v1/query counter must have advanced past the queries above (got $QUERY_REQS)"
REPLAYS=$(awk '$1 == "mintri_engine_replay_hits_total" {print $2}' /tmp/smoke_metrics.txt)
[ -n "$REPLAYS" ] || fail "metrics must expose engine replay hits"
awk -v v="$REPLAYS" 'BEGIN { exit !(v + 0 >= 1) }' \
    || fail "warm replay above must register a replay hit (got $REPLAYS)"
RANKED_QUERIES=$(awk '$1 == "mintri_engine_ranked_queries_total" {print $2}' /tmp/smoke_metrics.txt)
[ -n "$RANKED_QUERIES" ] || fail "metrics must expose the ranked query counter"
awk -v v="$RANKED_QUERIES" 'BEGIN { exit !(v + 0 >= 2) }' \
    || fail "the ranked best-k queries above must register (got $RANKED_QUERIES)"
grep -q 'mintri_engine_ranked_first_result_microseconds' /tmp/smoke_metrics.txt \
    || fail "metrics must expose the ranked first-result histogram"
grep -q 'mintri_http_request_microseconds_bucket' /tmp/smoke_metrics.txt \
    || fail "metrics must expose per-endpoint latency histograms"

echo "== malformed input answers a structured 400"
CODE=$(curl -s -o /tmp/smoke_400.json -w '%{http_code}' -X POST "$BASE/v1/query" -d '{definitely not json')
[ "$CODE" = "400" ] || fail "malformed JSON must answer 400, got $CODE"
grep -q '"error"' /tmp/smoke_400.json || fail "400 body must be structured"
curl -sf "$BASE/healthz" >/dev/null || fail "server must survive malformed input"

echo "== stats (learned cost profile included, document round-trips the core parser)"
curl -sf "$BASE/v1/stats" > /tmp/smoke_stats.json
STATS=$(cat /tmp/smoke_stats.json)
echo "$STATS" | grep -q '"sessions":' || fail "stats must report sessions"
echo "$STATS" | grep -q '"replay_hits":' || fail "stats must report engine replay hits"
echo "$STATS" | grep -q '"task":"best_k"' \
    || fail "slow-query ring must have captured the best-k request: $STATS"
echo "$STATS" | grep -q '"profile":' || fail "stats must surface the learned cost profile: $STATS"
echo "$STATS" | grep -q '"backend":"MCS_M"' \
    || fail "the queries above must have left per-atom profile rows: $STATS"
echo "$STATS" | grep -q '"live_runs":' || fail "profile rows must carry run counts: $STATS"
"$BENCH_CHECK" --parse /tmp/smoke_stats.json \
    || fail "the stats document must round-trip through the core JSON parser"

echo "== clean shutdown"
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
kill -0 "$SERVER_PID" 2>/dev/null && fail "server process leaked after shutdown"
trap - EXIT

# ---------------------------------------------------------------------
# Restart leg: warm state must survive a SIGTERM through --store-dir.
# ---------------------------------------------------------------------
STORE_DIR=$(mktemp -d /tmp/mintri-smoke-store.XXXXXX)
cleanup_store() {
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    rm -rf "$STORE_DIR"
}
trap cleanup_store EXIT

wait_up() {
    local up=""
    for _ in $(seq 1 50); do
        if curl -sf "$BASE/healthz" >/dev/null 2>&1; then up=1; break; fi
        kill -0 "$SERVER_PID" 2>/dev/null || fail "store server died during startup"
        sleep 0.2
    done
    [ -n "$up" ] || fail "store server never answered /healthz"
}

echo "== boot with --store-dir and warm a query"
"$BIN" serve --addr "$ADDR" --store-dir "$STORE_DIR" &
SERVER_PID=$!
wait_up
GID=$(curl -sf -X POST "$BASE/v1/graphs" -d "$GRAPH" | sed -n 's/.*"graph_id":"\([^"]*\)".*/\1/p')
[ -n "$GID" ] || fail "store upload returned no graph_id"
COLD=$(curl -sf -X POST "$BASE/v1/query" -d "$ENUM")
echo "$COLD" | grep -q '"count":14' || fail "store-backed cold query must work: $COLD"

# SIGTERM does not flush the write-behind queue; wait for the worker to
# publish the snapshots (graph + plan + answers = 3 entries) first.
published=""
for _ in $(seq 1 100); do
    ENTRIES=$(curl -sf "$BASE/v1/metrics" | awk '$1 == "mintri_store_entries" {print $2}')
    if [ -n "$ENTRIES" ] && awk -v v="$ENTRIES" 'BEGIN { exit !(v + 0 >= 3) }'; then
        published=1; break
    fi
    sleep 0.2
done
[ -n "$published" ] || fail "write-behind worker never published 3 store entries (got ${ENTRIES:-none})"

echo "== SIGTERM, then reboot over the same --store-dir"
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
"$BIN" serve --addr "$ADDR" --store-dir "$STORE_DIR" &
SERVER_PID=$!
wait_up

# No re-upload: the graph_id itself must survive the restart, and the
# first repeat query must replay from the disk tier with zero Extends.
RESTARTED=$(curl -sf -X POST "$BASE/v1/query" -d "$ENUM") \
    || fail "the uploaded graph_id must survive a restart"
echo "$RESTARTED" | grep -q '"count":14' || fail "restarted replay must be complete: $RESTARTED"
echo "$RESTARTED" | grep -q '"is_replay":true' \
    || fail "first repeat query after a restart must replay from disk: $RESTARTED"
curl -sf "$BASE/v1/metrics" > /tmp/smoke_metrics_restart.txt
STORE_HITS=$(awk '$1 == "mintri_store_hits_total" {print $2}' /tmp/smoke_metrics_restart.txt)
[ -n "$STORE_HITS" ] || fail "metrics must expose store hits"
awk -v v="$STORE_HITS" 'BEGIN { exit !(v + 0 >= 1) }' \
    || fail "the disk replay above must register store hits (got $STORE_HITS)"
grep -q 'mintri_store_hydrate_microseconds' /tmp/smoke_metrics_restart.txt \
    || fail "metrics must expose the hydrate-latency histogram"

echo "== store shutdown"
kill "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
kill -0 "$SERVER_PID" 2>/dev/null && fail "store server leaked after shutdown"
rm -rf "$STORE_DIR"
trap - EXIT

echo "SERVE SMOKE OK"

//! The engine in three acts: parallel streaming, deterministic delivery,
//! and warm sessions serving repeated queries.
//!
//! Run with: `cargo run --release --example parallel_enumeration`

use mintri::core::MinimalTriangulationsEnumerator;
use mintri::engine::{Delivery, Engine, EngineConfig, ParallelEnumerator};
use mintri::triangulate::McsM;
use mintri::workloads::random::erdos_renyi;
use std::time::Instant;

fn main() {
    let g = erdos_renyi(35, 0.22, 7);
    println!(
        "input: G(35, 0.22) — {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );
    let take = 3000;

    // Act 1 — the sequential baseline vs. the unordered parallel stream.
    let t0 = Instant::now();
    let sequential = MinimalTriangulationsEnumerator::new(&g).take(take).count();
    let sequential_ms = t0.elapsed().as_secs_f64() * 1e3;

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let t0 = Instant::now();
    let parallel = ParallelEnumerator::new(&g, threads).take(take).count();
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(sequential, parallel);
    println!(
        "first {take} triangulations: sequential {sequential_ms:.0} ms, \
         {threads} threads {parallel_ms:.0} ms ({:.1}x)",
        sequential_ms / parallel_ms
    );

    // Act 2 — deterministic delivery: parallel speed, sequential order.
    let ordered: Vec<_> = ParallelEnumerator::with_config(
        &g,
        Box::new(McsM),
        &EngineConfig {
            threads,
            delivery: Delivery::Deterministic,
            ..EngineConfig::default()
        },
    )
    .take(10)
    .map(|t| t.fill_count())
    .collect();
    let reference: Vec<_> = MinimalTriangulationsEnumerator::new(&g)
        .take(10)
        .map(|t| t.fill_count())
        .collect();
    assert_eq!(ordered, reference);
    println!("deterministic mode reproduces the sequential stream: {ordered:?}");

    // Act 3 — the serving story: one Engine, repeated traffic.
    let engine = Engine::new();
    let small = erdos_renyi(18, 0.3, 42);
    let t0 = Instant::now();
    let n = engine.enumerate(&small).count();
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let m = engine.enumerate(&small).count();
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(n, m);
    println!(
        "engine session: {n} triangulations — cold query {cold_ms:.1} ms, \
         warm replay {warm_ms:.1} ms"
    );
    let stats = engine.session(&small).stats();
    println!(
        "warm session state: {} separators interned, {} crossing tests \
         computed (shared by every future query on this graph)",
        stats.separators_interned, stats.crossing_computed
    );
}

//! The engine in three acts: parallel streaming, deterministic delivery,
//! and warm sessions serving repeated queries — every act the same typed
//! [`Query`] through [`Engine::run`].
//!
//! Run with: `cargo run --release --example parallel_enumeration`

use mintri::prelude::*;
use mintri::workloads::random::erdos_renyi;
use std::time::Instant;

fn main() {
    let g = erdos_renyi(35, 0.22, 7);
    println!(
        "input: G(35, 0.22) — {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );
    let take = 3000;
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let engine = Engine::new();

    // Act 1 — the sequential baseline vs. the unordered parallel stream:
    // the same query, executed locally vs. on the engine's pool.
    let t0 = Instant::now();
    let sequential = Query::enumerate()
        .budget(EnumerationBudget::results(take))
        .run_local(&g)
        .triangulations()
        .len();
    let sequential_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let parallel = engine
        .run(
            &g,
            Query::enumerate()
                .budget(EnumerationBudget::results(take))
                .policy(ExecPolicy::fixed().with_threads(threads)),
        )
        .count();
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(sequential, parallel);
    println!(
        "first {take} triangulations: sequential {sequential_ms:.0} ms, \
         {threads} threads {parallel_ms:.0} ms ({:.1}x)",
        sequential_ms / parallel_ms
    );

    // Act 2 — deterministic delivery: parallel speed, sequential order.
    let ordered: Vec<_> = engine
        .run(
            &g,
            Query::enumerate()
                .budget(EnumerationBudget::results(10))
                .policy(
                    ExecPolicy::fixed()
                        .with_threads(threads)
                        .with_delivery(Delivery::Deterministic),
                ),
        )
        .filter_map(QueryItem::into_triangulation)
        .map(|t| t.fill_count())
        .collect();
    let reference: Vec<_> = Query::enumerate()
        .budget(EnumerationBudget::results(10))
        .run_local(&g)
        .triangulations()
        .iter()
        .map(|t| t.fill_count())
        .collect();
    assert_eq!(ordered, reference);
    println!("deterministic mode reproduces the sequential stream: {ordered:?}");

    // Act 3 — the serving story: one Engine, repeated traffic. The
    // second query replays the completed answer list with zero Extend
    // calls — and so would a best-k or decompose query on the same graph.
    let small = erdos_renyi(18, 0.3, 42);
    let t0 = Instant::now();
    let n = engine.run(&small, Query::enumerate()).count();
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let warm = engine.run(&small, Query::enumerate());
    assert!(warm.is_replay());
    let m = warm.count();
    let warm_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(n, m);
    println!(
        "engine session: {n} triangulations — cold query {cold_ms:.1} ms, \
         warm replay {warm_ms:.1} ms"
    );
    // Sessions are keyed per planned atom, so aggregate across them.
    let stats = engine.memo_stats();
    println!(
        "warm session state: {} separators interned, {} crossing tests \
         computed (shared by every future query touching these atoms)",
        stats.separators_interned, stats.crossing_computed
    );
}

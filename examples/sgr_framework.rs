//! The SGR framework beyond triangulations: enumerating maximal
//! independent sets of graphs that are never materialized.
//!
//! Two demonstrations:
//!
//! 1. the *SETH gadget* of the paper's Proposition 3.6 — an SGR whose
//!    maximal independent sets count the satisfying assignments of a CNF
//!    formula (which is why SGR enumeration cannot have polynomial delay
//!    in general, only incremental polynomial time);
//! 2. a custom user-defined SGR (a huge rook's-graph slice) showing what
//!    implementing the trait takes.
//!
//! A closing act ties the framework back to the stack built on it: the
//! minimal-separator SGR is what the typed [`Query`] front door drives.
//!
//! Run with: `cargo run --example sgr_framework`

use mintri::prelude::Query;
use mintri::sgr::{CnfFormula, EnumMis, PrintMode, SethSgr, Sgr};

/// An n×n rook's graph presented succinctly: nodes are (row, col) cells,
/// edges connect cells sharing a row or column. For n = 1000 this graph
/// has 10^6 nodes and ~10^9 edges — but the SGR never builds it.
struct RookSgr {
    n: u32,
}

impl Sgr for RookSgr {
    type Node = (u32, u32);
    type NodeCursor = u64;
    type Scratch = ();

    fn start_nodes(&self) -> u64 {
        0
    }

    fn next_node(&self, cursor: &mut u64) -> Option<(u32, u32)> {
        let i = *cursor;
        if i >= (self.n as u64) * (self.n as u64) {
            return None;
        }
        *cursor += 1;
        Some(((i / self.n as u64) as u32, (i % self.n as u64) as u32))
    }

    fn edge(&self, &(r1, c1): &(u32, u32), &(r2, c2): &(u32, u32)) -> bool {
        (r1, c1) != (r2, c2) && (r1 == r2 || c1 == c2)
    }

    /// Maximal independent sets of the rook's graph are placements of n
    /// non-attacking rooks; extend greedily row by row.
    fn extend(&self, base: &[(u32, u32)]) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = base.to_vec();
        let mut used_rows: Vec<bool> = vec![false; self.n as usize];
        let mut used_cols: Vec<bool> = vec![false; self.n as usize];
        for &(r, c) in base {
            used_rows[r as usize] = true;
            used_cols[c as usize] = true;
        }
        let mut free_cols: Vec<u32> = (0..self.n).filter(|&c| !used_cols[c as usize]).collect();
        for r in 0..self.n {
            if !used_rows[r as usize] {
                let c = free_cols.pop().expect("as many free columns as free rows");
                out.push((r, c));
            }
        }
        out.sort_unstable();
        out
    }
}

fn main() {
    // --- 1. the SETH gadget -------------------------------------------
    // φ = (x1 ∨ x3) ∧ (¬x2 ∨ x4) over 4 variables
    let formula = CnfFormula::new(4, vec![vec![1, 3], vec![-2, 4]]);
    let sat_count = formula.count_satisfying();
    let gadget = SethSgr::new(formula);
    let mis_count = EnumMis::new(&gadget, PrintMode::UponGeneration).count() as u64;
    println!("SETH gadget: {mis_count} maximal independent sets");
    println!("            = 2·2^(n/2) sides + {sat_count} satisfying assignments");
    assert_eq!(mis_count, 2 * 4 + sat_count);

    // --- 2. a succinct rook's graph -----------------------------------
    // take the first few maximal independent sets (rook placements) of the
    // 50×50 rook's graph: 2500 nodes, ~122k edges, never materialized
    let rook = RookSgr { n: 50 };
    let placements: Vec<_> = EnumMis::new(&rook, PrintMode::UponGeneration)
        .take(5)
        .collect();
    println!(
        "\nrook's graph (n = 50): got {} maximal placements of {} rooks each",
        placements.len(),
        placements[0].len()
    );
    for p in &placements {
        assert_eq!(p.len(), 50);
        // non-attacking: all rows distinct, all columns distinct
        let mut rows: Vec<u32> = p.iter().map(|&(r, _)| r).collect();
        let mut cols: Vec<u32> = p.iter().map(|&(_, c)| c).collect();
        rows.sort_unstable();
        rows.dedup();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(rows.len(), 50);
        assert_eq!(cols.len(), 50);
    }
    println!("all placements verified non-attacking");

    // --- 3. the same machinery behind the front door -------------------
    // The triangulation stack is `EnumMis` over the minimal-separator SGR
    // (Theorem 4.1), served through the typed query API: maximal sets of
    // pairwise-parallel minimal separators ↔ minimal triangulations.
    let g = mintri::prelude::Graph::cycle(6);
    let outcome = Query::stats().run_local(&g).wait();
    println!(
        "\nfront door over the separator SGR: C6 has {} minimal \
         triangulations (= its SGR's maximal independent sets)",
        outcome.scanned
    );
    assert_eq!(outcome.scanned, 14);
}

//! Join query optimization: pick the best tree decomposition of a TPC-H
//! query under an application-specific cost function.
//!
//! This is the paper's motivating use case (Section 1): rather than trusting
//! one heuristic decomposition, enumerate many proper tree decompositions
//! and let the application choose by its own measure — width for worst-case
//! joins, or adhesion sizes for caching (Kalinsky et al.'s observation that
//! isomorphic minimum-width decompositions can differ by orders of
//! magnitude in join performance).
//!
//! The decomposition stream is a [`Query`] task; application-specific
//! measures are computed over its [`Response`] items.
//!
//! Run with: `cargo run --release --example join_query_optimization`

use mintri::prelude::*;
use mintri::workloads::tpch_query;

/// A caching-oriented cost: the sum of squared adhesion (bag-intersection)
/// sizes, preferring decompositions with small parent-child interfaces.
fn adhesion_cost(d: &TreeDecomposition) -> usize {
    d.edges
        .iter()
        .map(|&(i, j)| {
            let a = d.bags[i].intersection_len(&d.bags[j]);
            a * a
        })
        .sum()
}

fn main() {
    let q = tpch_query(7); // Volume Shipping: 1000+ minimal triangulations
    let g = &q.graph;
    println!(
        "TPC-H Q7 primal graph: {} variables, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    // Enumerate one decomposition per bag configuration, keeping the best
    // under three different objectives.
    let mut first: Option<(usize, usize, usize)> = None;
    let mut best_width = usize::MAX;
    let mut best_fill = usize::MAX;
    let mut best_adhesion = usize::MAX;

    let mut response = Query::decompose(TdEnumerationMode::OnePerClass).run_local(g);
    for d in response.by_ref().filter_map(QueryItem::into_decomposition) {
        let width = d.width();
        let fill = d.fill(g);
        let adhesion = adhesion_cost(&d);
        if first.is_none() {
            first = Some((width, fill, adhesion));
        }
        best_width = best_width.min(width);
        best_fill = best_fill.min(fill);
        best_adhesion = best_adhesion.min(adhesion);
    }
    let outcome = response.outcome();
    assert!(outcome.completed);

    let (w1, f1, a1) = first.expect("Q7 has decompositions");
    println!("\n{} bag configurations enumerated", outcome.produced);
    println!("measure      first   best");
    println!("width        {w1:5}  {best_width:5}");
    println!("fill         {f1:5}  {best_fill:5}");
    println!("adhesion²    {a1:5}  {best_adhesion:5}");
    println!(
        "\nThe first row is what the plain MCS-M heuristic returns; the best\n\
         column is what enumeration finds — the application picks its measure."
    );
}

//! Quickstart: enumerate the minimal triangulations and proper tree
//! decompositions of a small graph through the one query front door.
//!
//! Run with: `cargo run --example quickstart`

use mintri::prelude::*;

fn main() {
    // A 6-cycle: the simplest graph with an interesting triangulation space.
    let g = Graph::cycle(6);
    println!(
        "graph: C6 with {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    // 1. Enumerate ALL minimal triangulations (Catalan(4) = 14 of them).
    //    `Query` describes what to compute; `run_local` executes it
    //    sequentially with zero setup.
    println!("\nminimal triangulations:");
    let mut response = Query::enumerate().run_local(&g);
    for (i, tri) in response
        .by_ref()
        .filter_map(QueryItem::into_triangulation)
        .enumerate()
    {
        println!("  #{i:2}: width {}, fill {:?}", tri.width(), tri.fill);
        assert!(is_chordal(&tri.graph));
        assert!(is_minimal_triangulation(&g, &tri.graph));
    }
    // The same handle reports how the run went.
    let outcome = response.outcome();
    assert!(outcome.completed);
    println!(
        "  ({} results in {:.1} ms)",
        outcome.produced,
        outcome.elapsed.as_secs_f64() * 1e3,
    );

    // 2. Proper tree decompositions are the same query type with a
    //    different task.
    let decompositions = Query::decompose(TdEnumerationMode::AllDecompositions)
        .run_local(&g)
        .decompositions();
    println!(
        "\n{} proper tree decompositions; the first:",
        decompositions.len()
    );
    let d = &decompositions[0];
    for (i, bag) in d.bags.iter().enumerate() {
        println!("  bag {i}: {:?}", bag.to_vec());
    }
    println!("  tree edges: {:?}", d.edges);
    println!("  width: {}, valid: {}", d.width(), d.validate(&g).is_ok());

    // 3. Ranked selection under a budget — "give me something better" —
    //    is a task parameter too, not a separate API.
    let best = Query::best_k(1, CostMeasure::Fill)
        .budget(EnumerationBudget::results(5))
        .run_local(&g)
        .triangulations();
    println!(
        "\nbest fill among the first 5 results: {}",
        best[0].fill_count()
    );
}

//! Quickstart: enumerate the minimal triangulations and proper tree
//! decompositions of a small graph.
//!
//! Run with: `cargo run --example quickstart`

use mintri::prelude::*;

fn main() {
    // A 6-cycle: the simplest graph with an interesting triangulation space.
    let g = Graph::cycle(6);
    println!(
        "graph: C6 with {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    // 1. Enumerate ALL minimal triangulations (Catalan(4) = 14 of them).
    println!("\nminimal triangulations:");
    for (i, tri) in MinimalTriangulationsEnumerator::new(&g).enumerate() {
        println!("  #{i:2}: width {}, fill {:?}", tri.width(), tri.fill);
        assert!(is_chordal(&tri.graph));
        assert!(is_minimal_triangulation(&g, &tri.graph));
    }

    // 2. Enumerate the proper tree decompositions.
    let decompositions: Vec<TreeDecomposition> = ProperTreeDecompositions::new(&g).collect();
    println!(
        "\n{} proper tree decompositions; the first:",
        decompositions.len()
    );
    let d = &decompositions[0];
    for (i, bag) in d.bags.iter().enumerate() {
        println!("  bag {i}: {:?}", bag.to_vec());
    }
    println!("  tree edges: {:?}", d.edges);
    println!("  width: {}, valid: {}", d.width(), d.validate(&g).is_ok());

    // 3. The enumeration is lazy — an anytime "give me something better"
    //    loop needs no upfront bound:
    let best = MinimalTriangulationsEnumerator::new(&g)
        .take(5)
        .min_by_key(|t| t.fill_count())
        .expect("C6 has triangulations");
    println!(
        "\nbest fill among the first 5 results: {}",
        best.fill_count()
    );
}

//! Plugging a custom triangulation heuristic into the enumerator.
//!
//! The enumeration algorithm treats the triangulation procedure as a black
//! box (`Extend` runs it on repeatedly re-saturated graphs). Anything
//! implementing [`Triangulator`] works — even a deliberately silly one —
//! and the *set* of enumerated triangulations is always exactly
//! `MinTri(g)`; the backend only influences the discovery order and speed.
//! The backend is a parameter of the typed [`Query`], so the same swap
//! works locally and through an engine.
//!
//! Run with: `cargo run --example custom_triangulator`

use mintri::prelude::*;
use mintri::triangulate::{minimal_triangulation_sandwich, CompleteFill};

/// A custom backend: complete-fill followed by the sandwich minimalizer,
/// with a shared call counter to show it really is being invoked. The
/// counter is atomic because [`Triangulator`] requires `Send + Sync` (the
/// parallel engine calls backends from many threads).
struct CountingNaive {
    calls: std::sync::Arc<std::sync::atomic::AtomicUsize>,
}

impl Triangulator for CountingNaive {
    fn triangulate(&self, g: &Graph) -> Triangulation {
        self.calls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // produce a (grossly non-minimal) triangulation; the enumeration
        // stack will sandwich it down because guarantees_minimal() is false
        CompleteFill.triangulate(g)
    }

    fn name(&self) -> &'static str {
        "COUNTING_NAIVE"
    }
}

fn main() {
    let g = Graph::from_edges(
        7,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (2, 4),
            (4, 5),
            (5, 6),
            (6, 2),
        ],
    );

    // Reference run with the default backend (MCS-M).
    let mut reference: Vec<_> = Query::enumerate()
        .run_local(&g)
        .triangulations()
        .iter()
        .map(|t| t.graph.edges())
        .collect();
    reference.sort();

    // The same query with the custom backend swapped in.
    let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let backend = CountingNaive {
        calls: calls.clone(),
    };
    let mut custom: Vec<_> = Query::enumerate()
        .triangulator(Box::new(backend))
        .run_local(&g)
        .triangulations()
        .iter()
        .map(|t| t.graph.edges())
        .collect();
    custom.sort();

    // The answer sets agree exactly.
    assert_eq!(reference, custom);
    println!(
        "{} minimal triangulations enumerated identically by MCS-M and the \
         custom backend",
        reference.len()
    );
    println!(
        "custom Triangulate() was invoked {} times",
        calls.load(std::sync::atomic::Ordering::Relaxed)
    );

    // The sandwich step is also available directly:
    let naive = CompleteFill.triangulate(&g);
    let minimal = minimal_triangulation_sandwich(&g, &naive.graph);
    println!(
        "direct sandwich: complete fill added {} edges, minimalized down to {}",
        naive.fill_count(),
        minimal.fill_count()
    );
}

//! Anytime decomposition improvement for probabilistic inference.
//!
//! Junction-tree inference cost is exponential in the decomposition width,
//! so every saved width level matters. This example runs the enumerator as
//! an *anytime* algorithm on a Promedas-style medical-diagnosis network and
//! a grid MRF, reporting how the best width and fill improve over the run
//! (the Figure 9/10 methodology as a library feature) — the instrumented
//! scan is [`Query::stats`], and the aggregates come back in the
//! response's [`QueryOutcome`].
//!
//! Run with: `cargo run --release --example probabilistic_inference`

use mintri::prelude::*;
use mintri::workloads::pgm::promedas;
use mintri::workloads::random::grid;
use std::time::Duration;

fn report(name: &str, g: &Graph, budget: Duration) {
    let outcome = Query::stats()
        .budget(EnumerationBudget::results_or_time(5_000, budget))
        .run_local(g)
        .wait();
    let Some(q) = outcome.quality() else {
        println!("{name}: no results within budget");
        return;
    };
    println!(
        "\n{name}: {} nodes, {} edges — {} triangulations in {:.0} ms{}",
        g.num_nodes(),
        g.num_edges(),
        q.num_results,
        outcome.elapsed.as_secs_f64() * 1e3,
        if outcome.completed { " (complete)" } else { "" },
    );
    println!(
        "  width: first {} -> best {}  ({:.1}% reduction, {} results at least as good)",
        q.first_width, q.min_width, q.width_improvement_pct, q.num_leq_first_width
    );
    println!(
        "  fill:  first {} -> best {}  ({:.1}% reduction, {} results at least as good)",
        q.first_fill, q.min_fill, q.fill_improvement_pct, q.num_leq_first_fill
    );
    println!("  width improvements over time:");
    let mut best = usize::MAX;
    for r in &outcome.records {
        if r.width < best {
            best = r.width;
            println!("    {:6.1} ms: width {}", r.at.as_secs_f64() * 1e3, r.width);
        }
    }
}

fn main() {
    let diagnosis = promedas(24, 72, 4, 7);
    report(
        "Promedas-style network",
        &diagnosis,
        Duration::from_millis(1500),
    );

    let mrf = grid(8, 8);
    report("8x8 grid MRF", &mrf, Duration::from_millis(1500));
}

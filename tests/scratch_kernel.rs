//! The scratch-space execution kernel is *identity-preserving*: with the
//! kernel on (default) or ablated (`MsGraph::without_scratch_kernel`),
//! every executor must produce bit-for-bit the same answer stream — same
//! sets, same order, same `EnumMIS` and `MSGraph` counters. The kernel
//! changes only where intermediate buffers live, never what is computed.
//!
//! Coverage: random graphs (proptest) plus the chained-cycle corpus, the
//! sequential iterator in both print modes, `Query::run_local`, and
//! `Engine::run` in both deliveries at several thread counts.

use mintri::core::{Delivery, ExecPolicy, MinimalTriangulationsEnumerator, MsGraph, Query};
use mintri::engine::Engine;
use mintri::graph::{Graph, Node};
use mintri::sgr::{EnumMisStats, PrintMode};
use mintri::workloads::random::chained_cycles;
use proptest::prelude::*;

type Fill = Vec<(Node, Node)>;

/// A random graph on `3..=max_n` nodes with independent edge bits.
fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..=max_n).prop_flat_map(|n| {
        let m = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), m).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if bits[k] {
                        g.add_edge(u, v);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

/// Ordered fill lists plus counters from the sequential enumerator, with
/// the kernel on or ablated.
fn sequential(g: &Graph, kernel: bool, mode: PrintMode) -> (Vec<Fill>, EnumMisStats, usize) {
    let ms = if kernel {
        MsGraph::new(g)
    } else {
        MsGraph::new(g).without_scratch_kernel()
    };
    let mut e = MinimalTriangulationsEnumerator::from_msgraph(ms, mode);
    let fills: Vec<Fill> = e.by_ref().map(|t| t.fill).collect();
    let extends = e.msgraph_stats().extends;
    (fills, e.enum_stats(), extends)
}

/// Ordered fill lists from an engine run (unplanned, so the stream is
/// directly comparable to the raw sequential enumerator's).
fn engine_fills(g: &Graph, threads: usize, delivery: Delivery) -> Vec<Fill> {
    let mut resp = Engine::new().run(
        g,
        Query::enumerate().policy(
            ExecPolicy::fixed()
                .with_planned(false)
                .with_threads(threads)
                .with_delivery(delivery),
        ),
    );
    resp.triangulations().into_iter().map(|t| t.fill).collect()
}

/// Every executor against the kernel-ablated sequential baseline.
fn assert_kernel_identity(g: &Graph, threads: &[usize]) {
    let (fresh, fresh_stats, fresh_extends) = sequential(g, false, PrintMode::UponGeneration);

    // Sequential, kernel on: same stream, same counters, bit for bit.
    let (scratch, scratch_stats, scratch_extends) = sequential(g, true, PrintMode::UponGeneration);
    assert_eq!(
        fresh, scratch,
        "kernel changed the sequential stream on {g:?}"
    );
    assert_eq!(
        fresh_stats, scratch_stats,
        "kernel changed EnumMIS counters on {g:?}"
    );
    assert_eq!(
        fresh_extends, scratch_extends,
        "kernel changed the Extend count on {g:?}"
    );

    // Both print modes agree between the paths.
    assert_eq!(
        sequential(g, false, PrintMode::UponPop).0,
        sequential(g, true, PrintMode::UponPop).0,
        "kernel changed the UponPop stream on {g:?}"
    );

    // run_local drives the same kernel through the front door.
    let local: Vec<Fill> = Query::enumerate()
        .policy(ExecPolicy::fixed().with_planned(false))
        .run_local(g)
        .triangulations()
        .into_iter()
        .map(|t| t.fill)
        .collect();
    assert_eq!(
        fresh, local,
        "run_local diverged from the baseline on {g:?}"
    );

    let mut fresh_sorted = fresh.clone();
    fresh_sorted.sort();
    for &t in threads {
        // Deterministic delivery reproduces the sequential order exactly.
        assert_eq!(
            fresh,
            engine_fills(g, t, Delivery::Deterministic),
            "deterministic engine stream diverged at {t} threads on {g:?}"
        );
        // Unordered delivery reproduces the answer set.
        let mut unordered = engine_fills(g, t, Delivery::Unordered);
        unordered.sort();
        assert_eq!(
            fresh_sorted, unordered,
            "unordered engine set diverged at {t} threads on {g:?}"
        );
    }
}

#[test]
fn kernel_identity_on_chained_cycle_corpus() {
    for lengths in [vec![4], vec![5, 4], vec![6, 5], vec![5, 4, 6]] {
        let g = chained_cycles(&lengths);
        assert_kernel_identity(&g, &[1, 2, 4]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random graphs: the kernel is invisible in every observable —
    /// streams, sets, counters — on every executor.
    #[test]
    fn kernel_identity_on_random_graphs(g in graph_strategy(7)) {
        assert_kernel_identity(&g, &[1, 4]);
    }
}

//! Property-based tests (proptest) over random small graphs: the fast
//! algorithms must agree with brute-force oracles and preserve their
//! invariants on *every* input, not just the hand-picked ones.

use mintri::core::{
    BruteForce, CostMeasure, Delivery, MinimalTriangulationsEnumerator, ProperTreeDecompositions,
    Query,
};
use mintri::engine::{Engine, EngineConfig};
use mintri::prelude::*;
use mintri::separators::all_minimal_separators;
use mintri::separators::bruteforce::{all_minimal_separators_bruteforce, crossing_bruteforce};
use mintri::sgr::bruteforce::all_maximal_independent_sets;
use mintri::sgr::ExplicitSgr;
use mintri::triangulate::{
    eliminate, lb_triang, mcs_m, minimal_triangulation_sandwich, CompleteFill, OrderingStrategy,
};
use proptest::prelude::*;

/// A random graph on `3..=max_n` nodes with independent edge bits.
fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..=max_n).prop_flat_map(|n| {
        let m = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), m).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if bits[k] {
                        g.add_edge(u, v);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

/// Ordered fill lists of the best-k winners on the in-process executor.
fn best_k_fills_local(
    g: &Graph,
    k: usize,
    cost: CostMeasure,
    planned: bool,
    ranked: bool,
) -> Vec<Vec<(Node, Node)>> {
    let mut resp = Query::best_k(k, cost)
        .policy(
            ExecPolicy::fixed()
                .with_planned(planned)
                .with_ranked(ranked),
        )
        .run_local(g);
    resp.triangulations().into_iter().map(|t| t.fill).collect()
}

/// Ordered fill lists of the best-k winners on a `mintri-engine`
/// executor. Deterministic delivery pins the exhaustive gear's
/// production order so tie-breaking is comparable across gears.
fn best_k_fills_engine(
    engine: &Engine,
    g: &Graph,
    k: usize,
    cost: CostMeasure,
    planned: bool,
    ranked: bool,
) -> Vec<Vec<(Node, Node)>> {
    let mut resp = engine.run(
        g,
        Query::best_k(k, cost).policy(
            ExecPolicy::fixed()
                .with_planned(planned)
                .with_ranked(ranked)
                .with_delivery(Delivery::Deterministic),
        ),
    );
    resp.triangulations().into_iter().map(|t| t.fill).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incremental-polynomial-time enumerator produces exactly the
    /// brute-force set of minimal triangulations.
    #[test]
    fn enumerator_matches_brute_force(g in graph_strategy(6)) {
        let mut fast: Vec<_> = MinimalTriangulationsEnumerator::new(&g)
            .map(|t| t.graph.edges())
            .collect();
        fast.sort();
        let slow: Vec<_> = BruteForce::minimal_triangulations(&g)
            .iter()
            .map(|h| h.edges())
            .collect();
        prop_assert_eq!(fast, slow);
    }

    /// Berry–Bordat–Cogis agrees with the definitional brute force.
    #[test]
    fn separator_enumeration_matches_brute_force(g in graph_strategy(7)) {
        prop_assert_eq!(
            all_minimal_separators(&g),
            all_minimal_separators_bruteforce(&g)
        );
    }

    /// The component-counting crossing test agrees with the definitional
    /// one, and is symmetric.
    #[test]
    fn crossing_test_is_correct_and_symmetric(g in graph_strategy(7)) {
        let seps = all_minimal_separators(&g);
        for s in &seps {
            for t in &seps {
                prop_assert_eq!(crossing(&g, s, t), crossing_bruteforce(&g, s, t));
                prop_assert_eq!(crossing(&g, s, t), crossing(&g, t, s));
            }
        }
    }

    /// MCS-M always produces a minimal triangulation whose reported PEO is
    /// a perfect elimination order of it.
    #[test]
    fn mcs_m_is_minimal(g in graph_strategy(8)) {
        let t = mcs_m(&g);
        prop_assert!(is_chordal(&t.graph));
        prop_assert!(is_minimal_triangulation(&g, &t.graph));
        prop_assert!(mintri::chordal::is_perfect_elimination_order(
            &t.graph,
            t.peo.as_ref().unwrap()
        ));
    }

    /// LB-Triang produces a minimal triangulation for every strategy.
    #[test]
    fn lb_triang_is_minimal(g in graph_strategy(7), which in 0usize..3) {
        let strat = match which {
            0 => OrderingStrategy::MinFill,
            1 => OrderingStrategy::MinDegree,
            _ => OrderingStrategy::Natural,
        };
        let t = lb_triang(&g, &strat);
        prop_assert!(is_chordal(&t.graph));
        prop_assert!(is_minimal_triangulation(&g, &t.graph));
    }

    /// Elimination fill-in always triangulates (possibly non-minimally),
    /// and the sandwich step always minimalizes it.
    #[test]
    fn sandwich_minimalizes_any_triangulation(g in graph_strategy(7)) {
        let raw = eliminate(&g, &OrderingStrategy::Natural);
        prop_assert!(is_chordal(&raw.graph));
        let m = minimal_triangulation_sandwich(&g, &raw.graph);
        prop_assert!(is_minimal_triangulation(&g, &m.graph));
        let naive = CompleteFill.triangulate(&g);
        let m2 = minimal_triangulation_sandwich(&g, &naive.graph);
        prop_assert!(is_minimal_triangulation(&g, &m2.graph));
    }

    /// `EnumMIS` over an explicit SGR equals brute-force maximal
    /// independent set enumeration.
    #[test]
    fn enum_mis_matches_brute_force(g in graph_strategy(8)) {
        let sgr = ExplicitSgr::new(&g);
        let mut fast: Vec<Vec<Node>> = EnumMis::new(&sgr, PrintMode::UponGeneration).collect();
        fast.sort();
        prop_assert_eq!(fast, all_maximal_independent_sets(&g));
    }

    /// MCS and Lex-BFS agree on chordality.
    #[test]
    fn chordality_deciders_agree(g in graph_strategy(8)) {
        let via_mcs = is_chordal(&g);
        let via_lexbfs = mintri::chordal::is_perfect_elimination_order(
            &g,
            &mintri::chordal::lexbfs_order(&g),
        );
        prop_assert_eq!(via_mcs, via_lexbfs);
    }

    /// Chordal maximal-clique extraction agrees with Bron–Kerbosch.
    #[test]
    fn chordal_cliques_match_bron_kerbosch(g in graph_strategy(8)) {
        let h = mcs_m(&g).graph; // make it chordal
        let mut fast = mintri::chordal::maximal_cliques_chordal(&h);
        fast.sort();
        prop_assert_eq!(fast, maximal_cliques(&h));
    }

    /// Every emitted proper tree decomposition is valid and proper, with
    /// distinct (bags, edges) pairs.
    #[test]
    fn proper_decompositions_are_valid_and_distinct(g in graph_strategy(6)) {
        let mut seen = Vec::new();
        for d in ProperTreeDecompositions::new(&g).take(60) {
            prop_assert!(d.validate(&g).is_ok());
            prop_assert!(d.is_proper(&g));
            let mut key_bags = d.bags.clone();
            key_bags.sort();
            let mut key_edges = d.edges.clone();
            key_edges.sort_unstable();
            let key = (key_bags, key_edges);
            prop_assert!(!seen.contains(&key));
            seen.push(key);
        }
    }

    /// The minimal separators of every minimal triangulation of `g` are
    /// minimal separators of `g` (one half of Theorem 4.1, on random
    /// inputs).
    #[test]
    fn triangulation_separators_come_from_the_input(g in graph_strategy(6)) {
        let g_seps = all_minimal_separators(&g);
        for tri in MinimalTriangulationsEnumerator::new(&g) {
            for s in all_minimal_separators(&tri.graph) {
                prop_assert!(g_seps.contains(&s));
            }
        }
    }

    /// The clique forest of a chordal graph satisfies the junction
    /// property and covers the graph.
    #[test]
    fn clique_forests_are_junction_forests(g in graph_strategy(8)) {
        let h = mcs_m(&g).graph;
        let f = CliqueForest::build(&h);
        prop_assert!(f.is_valid_junction_forest(h.num_nodes()));
        // decomposition induced by the forest is a valid TD of h
        let d = TreeDecomposition { bags: f.cliques, edges: f.edges };
        prop_assert!(d.validate(&h).is_ok());
    }

    /// The ranked best-k gear agrees with the exhaustive scan bit for
    /// bit — same winners, same order — for every cost measure, every
    /// planning mode, and k ∈ {1, 3, all}, on random graphs.
    #[test]
    fn ranked_best_k_matches_exhaustive_locally(g in graph_strategy(6)) {
        for cost in [CostMeasure::Width, CostMeasure::Fill] {
            for planned in [true, false] {
                for k in [1usize, 3, 1_000] {
                    let ranked = best_k_fills_local(&g, k, cost, planned, true);
                    let exhaustive = best_k_fills_local(&g, k, cost, planned, false);
                    prop_assert_eq!(ranked, exhaustive, "cost {:?} planned {} k {}", cost, planned, k);
                }
            }
        }
    }
}

proptest! {
    // Fewer cases: each one boots an engine and runs 24 queries.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The same bit-for-bit agreement holds on the engine executor —
    /// warm sessions, replay caches and the parallel drivers included
    /// (all combinations share one engine, so later queries exercise
    /// the warm paths).
    #[test]
    fn ranked_best_k_matches_exhaustive_on_the_engine(g in graph_strategy(6)) {
        let engine = Engine::with_config(EngineConfig {
            threads: 2,
            ..EngineConfig::default()
        });
        for cost in [CostMeasure::Width, CostMeasure::Fill] {
            for planned in [true, false] {
                for k in [1usize, 3, 1_000] {
                    let ranked = best_k_fills_engine(&engine, &g, k, cost, planned, true);
                    let exhaustive = best_k_fills_engine(&engine, &g, k, cost, planned, false);
                    prop_assert_eq!(ranked, exhaustive, "cost {:?} planned {} k {}", cost, planned, k);
                }
            }
        }
    }
}

/// The agreement pinned on the planner's favorite corpus: chained
/// cycles decompose into one atom per cycle, so the ranked odometer
/// (not just the flat ranked stream) carries the best-k query. C4, C5
/// and C6 have 2 × 5 × 14 = 140 minimal triangulations combined.
#[test]
fn ranked_matches_exhaustive_on_chained_cycles() {
    let g = mintri::workloads::random::chained_cycles(&[4, 5, 6]);
    let engine = Engine::with_config(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    for cost in [CostMeasure::Width, CostMeasure::Fill] {
        for planned in [true, false] {
            for k in [1usize, 3, 200] {
                let exhaustive = best_k_fills_local(&g, k, cost, planned, false);
                assert_eq!(
                    best_k_fills_local(&g, k, cost, planned, true),
                    exhaustive,
                    "local: cost {cost:?} planned {planned} k {k}"
                );
                assert_eq!(
                    best_k_fills_engine(&engine, &g, k, cost, planned, true),
                    exhaustive,
                    "engine: cost {cost:?} planned {planned} k {k}"
                );
            }
        }
    }
}

//! Contracts of the parallel engine against the sequential reference:
//!
//! * `Delivery::Deterministic` reproduces the sequential enumerator's
//!   output **in order** on the same graph families `tests/determinism.rs`
//!   pins — parallel hardware must never change golden outputs;
//! * `Delivery::Unordered` reproduces the answer **set** at every thread
//!   count (property-tested over random graphs at 1, 2 and 4 threads);
//! * the `Engine` session layer serves repeated queries from its warm
//!   cache without recomputation and without changing answers.

use mintri::core::MinimalTriangulationsEnumerator;
use mintri::engine::{Delivery, Engine, EngineConfig, ParallelEnumerator};
use mintri::prelude::*;
use mintri::triangulate::McsM;
use mintri::workloads::pgm::promedas;
use mintri::workloads::random::erdos_renyi;
use proptest::prelude::*;

fn sequential_edges(g: &Graph, limit: usize) -> Vec<Vec<(Node, Node)>> {
    MinimalTriangulationsEnumerator::new(g)
        .take(limit)
        .map(|t| t.graph.edges())
        .collect()
}

fn deterministic_parallel_edges(g: &Graph, threads: usize, limit: usize) -> Vec<Vec<(Node, Node)>> {
    ParallelEnumerator::with_config(
        g,
        Box::new(McsM),
        &EngineConfig {
            threads,
            delivery: Delivery::Deterministic,
            ..EngineConfig::default()
        },
    )
    .take(limit)
    .map(|t| t.graph.edges())
    .collect()
}

#[test]
fn deterministic_mode_matches_sequential_on_determinism_families() {
    // the same graphs tests/determinism.rs uses for its golden runs
    let families = [
        erdos_renyi(20, 0.3, 99),
        promedas(12, 36, 3, 5),
        erdos_renyi(25, 0.25, 7),
        mintri::workloads::tpch_query(7).graph,
    ];
    for g in &families {
        let expected = sequential_edges(g, 50);
        for threads in [2, 4] {
            assert_eq!(
                deterministic_parallel_edges(g, threads, 50),
                expected,
                "Deterministic delivery diverged from the sequential order \
                 at {threads} threads on a {}-node graph",
                g.num_nodes()
            );
        }
    }
}

/// The deterministic driver runs the *same* `Frontier` schedule as the
/// sequential iterator, so its `EnumMIS` counters — extend calls, edge
/// queries, nodes generated, answers — must match exactly, not just the
/// emitted stream. Counter drift would mean the schedules diverged even
/// if the outputs happened to agree.
#[test]
fn deterministic_stats_match_sequential_on_determinism_families() {
    let families = [
        erdos_renyi(20, 0.3, 99),
        promedas(12, 36, 3, 5),
        erdos_renyi(25, 0.25, 7),
        mintri::workloads::tpch_query(7).graph,
    ];
    for g in &families {
        let mut seq = MinimalTriangulationsEnumerator::new(g);
        let n_seq = seq.by_ref().take(50).count();
        for threads in [2, 4] {
            let mut par = ParallelEnumerator::with_config(
                g,
                Box::new(McsM),
                &EngineConfig {
                    threads,
                    delivery: Delivery::Deterministic,
                    ..EngineConfig::default()
                },
            );
            let n_par = par.by_ref().take(50).count();
            assert_eq!(n_seq, n_par);
            assert_eq!(
                seq.enum_stats(),
                par.enum_stats()
                    .expect("deterministic delivery exposes EnumMIS stats"),
                "EnumMIS counters diverged from the sequential schedule at \
                 {threads} threads on a {}-node graph",
                g.num_nodes()
            );
        }
    }
}

#[test]
fn deterministic_mode_is_reproducible_across_runs() {
    let g = erdos_renyi(18, 0.3, 12345);
    let a = deterministic_parallel_edges(&g, 4, 40);
    let b = deterministic_parallel_edges(&g, 4, 40);
    assert_eq!(a, b);
}

#[test]
fn engine_replay_preserves_results_across_queries() {
    let engine = Engine::new();
    let g = erdos_renyi(14, 0.25, 3);
    let mut first: Vec<_> = engine
        .run(&g, Query::enumerate())
        .filter_map(QueryItem::into_triangulation)
        .map(|t| t.graph.edges())
        .collect();
    let computed = engine.session(&g).stats().extends;
    let replay = engine.run(&g, Query::enumerate());
    assert!(replay.is_replay(), "second query must be a cache replay");
    let mut second: Vec<_> = replay
        .filter_map(QueryItem::into_triangulation)
        .map(|t| t.graph.edges())
        .collect();
    assert_eq!(
        engine.session(&g).stats().extends,
        computed,
        "replay must not invoke Extend"
    );
    first.sort();
    second.sort();
    assert_eq!(first, second);
    let mut reference: Vec<_> = MinimalTriangulationsEnumerator::new(&g)
        .map(|t| t.graph.edges())
        .collect();
    reference.sort();
    assert_eq!(first, reference);
}

/// A random graph on `3..=max_n` nodes with independent edge bits (the
/// same strategy `tests/properties.rs` uses).
fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..=max_n).prop_flat_map(|n| {
        let m = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), m).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if bits[k] {
                        g.add_edge(u, v);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Unordered` mode yields exactly the sequential answer set at 1, 2
    /// and 4 threads — on every random input, not just the nice ones.
    #[test]
    fn unordered_mode_yields_the_same_set_at_every_thread_count(g in graph_strategy(7)) {
        let mut expected: Vec<_> = MinimalTriangulationsEnumerator::new(&g)
            .map(|t| t.graph.edges())
            .collect();
        expected.sort();
        for threads in [1usize, 2, 4] {
            let mut got: Vec<_> = ParallelEnumerator::new(&g, threads)
                .map(|t| t.graph.edges())
                .collect();
            got.sort();
            prop_assert_eq!(&got, &expected, "thread count {}", threads);
        }
    }

    /// The engine session agrees with brute-force-validated sequential
    /// enumeration on arbitrary graphs.
    #[test]
    fn engine_enumeration_matches_sequential_set(g in graph_strategy(6)) {
        let engine = Engine::new();
        let mut got: Vec<_> = engine
            .run(&g, Query::enumerate())
            .filter_map(QueryItem::into_triangulation)
            .map(|t| t.graph.edges())
            .collect();
        got.sort();
        let mut expected: Vec<_> = MinimalTriangulationsEnumerator::new(&g)
            .map(|t| t.graph.edges())
            .collect();
        expected.sort();
        prop_assert_eq!(got, expected);
    }
}

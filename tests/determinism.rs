//! Determinism: the library must produce identical results — in identical
//! order — across runs. The stack uses no randomized hashing or iteration
//! (FxHash with fixed seeds, ordered tie-breaks), so enumeration order is a
//! reproducible artifact users can rely on (e.g. for golden tests and
//! distributed work splitting).

use mintri::core::{MinimalTriangulationsEnumerator, ProperTreeDecompositions};
use mintri::prelude::*;
use mintri::workloads::pgm::promedas;
use mintri::workloads::random::erdos_renyi;

#[test]
fn triangulation_order_is_reproducible() {
    let g = erdos_renyi(20, 0.3, 99);
    let run = || -> Vec<Vec<(Node, Node)>> {
        MinimalTriangulationsEnumerator::new(&g)
            .take(50)
            .map(|t| t.graph.edges())
            .collect()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same graph, same order, same results");
    assert_eq!(a.len(), 50);
}

#[test]
fn decomposition_order_is_reproducible() {
    let g = promedas(12, 36, 3, 5);
    let run = || -> Vec<(usize, usize)> {
        ProperTreeDecompositions::new(&g)
            .take(30)
            .map(|d| (d.num_bags(), d.width()))
            .collect()
    };
    assert_eq!(run(), run());
}

#[test]
fn separator_stream_is_reproducible() {
    let g = erdos_renyi(25, 0.25, 7);
    let run = || -> Vec<Vec<Node>> {
        MinimalSeparatorIter::new(&g)
            .take(100)
            .map(|s| s.to_vec())
            .collect()
    };
    assert_eq!(run(), run());
}

#[test]
fn workload_generators_are_seed_stable_snapshots() {
    // golden values: if these change, seeded reproducibility broke and
    // every number in EXPERIMENTS.md silently shifts. Pinned against the
    // vendored xoshiro256++ `rand` stand-in (crates/vendor/rand).
    let g = promedas(24, 72, 4, 7);
    assert_eq!((g.num_nodes(), g.num_edges()), (96, 295));
    let r = erdos_renyi(30, 0.3, 42);
    assert_eq!(r.num_edges(), 121);
    let q7 = mintri::workloads::tpch_query(7);
    assert_eq!(
        MinimalTriangulationsEnumerator::new(&q7.graph).count(),
        1188,
        "the Q7 outlier count is pinned (paper: 700 for the original encoding)"
    );
}

//! Pins the zero-allocation invariant of the scratch-space execution
//! kernel: once the workspace and the shared memo tables are warm,
//! re-evaluating the enumeration's `(answer, direction)` pairs through
//! [`ExtendPair::evaluate_with`] must not touch the heap at all — no
//! bitset clones, no BFS queues, no MCS-M buffers, no interner inserts.
//!
//! **Scope.** The invariant covers the kernel API surface
//! (`extend_with`/`edge_with` through a reused [`EvalScratch`]) in steady
//! state, i.e. when every evaluation reproduces an already-known answer —
//! which is the overwhelming majority of `Extend` calls in a real run
//! (each of the `n·|answers|` pairs yields one of `|answers|` answers).
//! Genuinely *new* answers are out of scope by design: absorbing one
//! requires an owned `Vec` for the seen-set and an `Arc` for the queue,
//! exactly as the pre-kernel code paid.
//!
//! This is deliberately a single `#[test]` in its own integration binary:
//! the counting `#[global_allocator]` sees every allocation in the
//! process, so a sibling test running concurrently would poison the
//! measurement.

use mintri::core::MsGraph;
use mintri::sgr::{EnumMis, EvalScratch, ExtendPair, PrintMode, Sgr};
use mintri::workloads::random::chained_cycles;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// System allocator wrapper counting every heap acquisition (alloc,
/// alloc_zeroed, realloc). Deallocations are not counted — the invariant
/// is about *acquiring* memory on the hot path.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_extend_allocates_zero_times() {
    let g = chained_cycles(&[6, 5, 6]);
    let ms = MsGraph::new(&g);
    let ms = &ms;

    // Warm the shared tables: a full enumeration interns every separator,
    // memoizes every crossing test the schedule asks, and records every
    // answer.
    let answers: Vec<Vec<_>> = EnumMis::new(ms, PrintMode::UponGeneration).collect();
    let nodes: Vec<_> = ms.nodes().collect();
    assert!(answers.len() > 1, "workload too trivial to audit");

    // Materialize the steady-state pair set once, outside the measured
    // region (building a pair allocates its Arc'd answer by design).
    let mut pairs: Vec<ExtendPair<_>> = vec![ExtendPair {
        answer: Arc::new(Vec::new()),
        direction: None,
    }];
    for answer in &answers {
        for v in &nodes {
            pairs.push(ExtendPair {
                answer: Arc::new(answer.clone()),
                direction: Some(*v),
            });
        }
    }

    // Warm the private workspace: the first pass sizes every scratch
    // buffer to this graph's shapes.
    let mut ws: EvalScratch<&MsGraph> = EvalScratch::default();
    let mut produced = 0usize;
    for pair in &pairs {
        produced += usize::from(pair.evaluate_with(&ms, &mut ws));
    }
    assert!(produced > 0, "warmup evaluated no productive pair");

    // Measured pass: the same evaluations, now with warm scratch and warm
    // memo tables, must not allocate at all.
    let before = ALLOCS.load(Ordering::Relaxed);
    for pair in &pairs {
        pair.evaluate_with(&ms, &mut ws);
    }
    let observed = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        observed,
        0,
        "steady-state kernel evaluation of {} pairs performed {} heap \
         allocations (expected 0) — a scratch buffer is being rebuilt or \
         a clone slipped back into the Extend/crossing path",
        pairs.len(),
        observed,
    );
}

//! The persistent warm-state tier, end to end through the engine:
//! eviction spills to disk instead of discarding, a restarted (or
//! different) engine hydrates sessions from the store with **zero**
//! `Extend` calls, corrupt entries degrade to safe recomputation, and
//! concurrent hydrate races keep exactly one session.

use mintri::engine::{Engine, EngineConfig, Store, StoreConfig};
use mintri::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch store root, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!(
            "mintri-engine-store-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn open(&self) -> Arc<Store> {
        Arc::new(Store::open(StoreConfig::at(&self.0)).expect("store opens"))
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn engine_at(dir: &ScratchDir) -> Engine {
    Engine::with_store(
        EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        },
        dir.open(),
    )
}

#[test]
fn evicted_then_requeried_session_hydrates_with_zero_extends() {
    let dir = ScratchDir::new("evict-hydrate");
    let engine = engine_at(&dir);
    let g = Graph::cycle(6);
    assert_eq!(engine.run(&g, Query::enumerate()).count(), 14);
    assert!(engine.memo_stats().extends > 0, "the cold run worked");

    // Eviction spills the session's winnings to disk instead of
    // discarding them (the pre-store engine silently dropped both the
    // answer cache and the memoized plan here).
    engine.evict(&g);
    assert_eq!(engine.sessions_cached(), 0);
    engine.store().unwrap().flush();

    let warm = engine.run(&g, Query::enumerate());
    assert!(warm.is_replay(), "the requery hydrates from disk");
    assert_eq!(warm.count(), 14);
    assert_eq!(
        engine.memo_stats().extends,
        0,
        "a hydrated session re-interns separators but never Extends"
    );
    assert!(engine.telemetry().store_hits.get() >= 1);
}

#[test]
fn a_restarted_engine_replays_from_the_shared_store_dir() {
    let dir = ScratchDir::new("restart");
    let g = Graph::cycle(6);
    {
        let first = engine_at(&dir);
        assert_eq!(first.run(&g, Query::enumerate()).count(), 14);
        first.store().unwrap().flush();
    }
    // "Restart": a brand-new engine over the same directory — also the
    // multi-replica story (one replica's cold miss is another's warm
    // hit).
    let second = engine_at(&dir);
    let warm = second.run(&g, Query::enumerate());
    assert!(
        warm.is_replay(),
        "the first repeat query after a restart replays from the disk tier"
    );
    assert_eq!(warm.count(), 14);
    assert_eq!(second.memo_stats().extends, 0, "zero Extends after restart");
    assert!(
        second.telemetry().store_hits.get() >= 1,
        "plan + answers hit"
    );
    // The hydrated deposit now serves straight from RAM.
    assert!(second.run(&g, Query::enumerate()).is_replay());
}

#[test]
fn clear_sessions_spills_before_dropping() {
    let dir = ScratchDir::new("clear");
    let engine = engine_at(&dir);
    let g = Graph::cycle(7);
    assert_eq!(engine.run(&g, Query::enumerate()).count(), 42);
    engine.clear_sessions();
    engine.store().unwrap().flush();
    let warm = engine.run(&g, Query::enumerate());
    assert!(warm.is_replay(), "cleared state hydrates back from disk");
    assert_eq!(warm.count(), 42);
}

#[test]
fn corrupt_store_entries_cost_recomputation_never_wrong_answers() {
    let dir = ScratchDir::new("corrupt");
    let g = Graph::cycle(6);
    {
        let engine = engine_at(&dir);
        assert_eq!(engine.run(&g, Query::enumerate()).count(), 14);
        engine.store().unwrap().flush();
    }
    // Bit-flip every published entry on disk (answers and plan alike).
    for sub in ["answers", "plans"] {
        for entry in std::fs::read_dir(dir.0.join(sub)).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
        }
    }
    let engine = engine_at(&dir);
    let cold = engine.run(&g, Query::enumerate());
    assert!(
        !cold.is_replay(),
        "corrupt entries must be misses, not answers"
    );
    assert_eq!(cold.count(), 14, "recomputation still gets it right");
    let stats = engine.store().unwrap().stats();
    assert!(
        stats.corrupt_quarantined >= 2,
        "both corrupt entries were quarantined (got {})",
        stats.corrupt_quarantined
    );
}

#[test]
fn concurrent_hydrate_races_keep_exactly_one_session() {
    let dir = ScratchDir::new("race");
    let g = Graph::cycle(7);
    {
        let warmup = engine_at(&dir);
        assert_eq!(warmup.run(&g, Query::enumerate()).count(), 42);
        warmup.store().unwrap().flush();
    }
    let engine = Arc::new(engine_at(&dir));
    let mut clients = Vec::new();
    for _ in 0..8 {
        let engine = Arc::clone(&engine);
        let g = g.clone();
        clients.push(std::thread::spawn(move || {
            let response = engine.run(&g, Query::enumerate());
            let replayed = response.is_replay();
            (replayed, response.count())
        }));
    }
    for client in clients {
        let (replayed, count) = client.join().expect("no hydrator may panic");
        assert!(replayed, "every racer is served a replay");
        assert_eq!(count, 42);
    }
    assert_eq!(
        engine.sessions_cached(),
        1,
        "racing hydrators must converge on one session"
    );
    assert_eq!(engine.memo_stats().extends, 0);
}

#[cfg(feature = "parallel")]
#[test]
fn an_unordered_recording_never_hydrates_a_deterministic_query() {
    use mintri::engine::Delivery;

    let dir = ScratchDir::new("unordered");
    let g = Graph::cycle(7);
    {
        // A multi-threaded run records one particular race outcome.
        let writer = Engine::with_store(
            EngineConfig {
                threads: 4,
                ..EngineConfig::default()
            },
            dir.open(),
        );
        assert_eq!(
            writer
                .run(
                    &g,
                    Query::enumerate().policy(ExecPolicy::fixed().with_threads(4))
                )
                .count(),
            42
        );
        writer.store().unwrap().flush();
    }
    let reader = engine_at(&dir);
    let det = reader.run(
        &g,
        Query::enumerate().policy(ExecPolicy::fixed().with_delivery(Delivery::Deterministic)),
    );
    assert!(
        !det.is_replay(),
        "order is a contract: an unordered disk recording cannot serve it"
    );
    assert_eq!(det.count(), 42);
    // An unordered query, by contrast, is happy with the disk recording.
    let unordered = reader.run(&g, Query::enumerate());
    assert!(unordered.is_replay());
    assert_eq!(unordered.count(), 42);
}

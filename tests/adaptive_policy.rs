//! The adaptive-execution contract: `ExecPolicy::Auto` may reschedule —
//! move the thread pool, reorder odometer cursors, demote to sequential
//! — but it must never change *what* a query answers. On every input,
//! Auto and Fixed agree set-identically under `Delivery::Unordered` and
//! bit-for-bit under `Delivery::Deterministic`, on both executors
//! (`Query::run_local` and the engine), with a cold profile and with a
//! warm one (the engine's learned costs actively steering dispatch).

use mintri::prelude::*;
use mintri::workloads::random::chained_cycles;
use proptest::prelude::*;

/// A random graph on `3..=max_n` nodes with independent edge bits.
fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..=max_n).prop_flat_map(|n| {
        let m = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), m).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if bits[k] {
                        g.add_edge(u, v);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

/// Drains one response into the full edge list of each triangulation —
/// a faithful identity for both set and order comparisons.
fn drain(resp: Response<'_>) -> Vec<Vec<(Node, Node)>> {
    resp.filter_map(QueryItem::into_triangulation)
        .map(|t| t.graph.edges())
        .collect()
}

fn run_local(g: &Graph, policy: ExecPolicy) -> Vec<Vec<(Node, Node)>> {
    drain(Query::enumerate().policy(policy).run_local(g))
}

fn run_engine(engine: &Engine, g: &Graph, policy: ExecPolicy) -> Vec<Vec<(Node, Node)>> {
    drain(engine.run(g, Query::enumerate().policy(policy)))
}

fn sorted(mut v: Vec<Vec<(Node, Node)>>) -> Vec<Vec<(Node, Node)>> {
    v.sort();
    v
}

/// The whole matrix for one graph: local + engine, cold + warm, both
/// delivery contracts. `threads` sizes the engines' worker pools.
/// Returns `true` when the graph taught the Auto engine no profile
/// (it planned to zero enumerated atoms).
fn assert_auto_matches_fixed(g: &Graph, threads: usize) -> bool {
    let det = Delivery::Deterministic;

    // In-process executor: no profile ever exists here, but Auto must
    // still honor both contracts.
    let fixed_unordered = run_local(g, ExecPolicy::fixed());
    let auto_unordered = run_local(g, ExecPolicy::auto());
    assert_eq!(
        sorted(auto_unordered),
        sorted(fixed_unordered),
        "local unordered: Auto changed the result set"
    );
    let fixed_det = run_local(g, ExecPolicy::fixed().with_delivery(det));
    let auto_det = run_local(g, ExecPolicy::auto().with_delivery(det));
    assert_eq!(
        auto_det, fixed_det,
        "local deterministic: Auto changed the order"
    );

    // Engine executor, separate engines so Fixed never sees Auto's
    // learned state. Each engine is queried three times per contract:
    // cold (empty profile), then — after evicting the warm sessions so
    // the run is live again — with the profile actively steering.
    let auto_engine = Engine::with_config(EngineConfig {
        threads,
        ..EngineConfig::default()
    });
    let fixed_engine = Engine::with_config(EngineConfig {
        threads,
        ..EngineConfig::default()
    });
    for round in ["cold", "warm"] {
        let fixed = run_engine(&fixed_engine, g, ExecPolicy::fixed());
        let auto = run_engine(&auto_engine, g, ExecPolicy::auto());
        assert_eq!(
            sorted(auto),
            sorted(fixed),
            "engine unordered ({round}): Auto changed the result set"
        );
        let fixed_det = run_engine(&fixed_engine, g, ExecPolicy::fixed().with_delivery(det));
        let auto_det = run_engine(&auto_engine, g, ExecPolicy::auto().with_delivery(det));
        assert_eq!(
            auto_det, fixed_det,
            "engine deterministic ({round}): Auto changed the order"
        );
        // Sessions evicted, profiles kept: the next round's enumerations
        // run live under learned predictions instead of replaying.
        auto_engine.clear_sessions();
        fixed_engine.clear_sessions();
    }
    // A graph that planned to zero enumerated atoms (chordal inputs)
    // teaches nothing; everything else must have left a profile behind,
    // or the "warm" rounds above silently tested cold dispatch twice.
    auto_engine.profile_views().is_empty()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Auto ≡ Fixed on random graphs, sequential engines.
    #[test]
    fn auto_matches_fixed_on_random_graphs(g in graph_strategy(6)) {
        assert_auto_matches_fixed(&g, 1);
    }

    /// The same with a parallel worker pool, where Auto's thread-split
    /// and demotion decisions actually bite.
    #[test]
    fn auto_matches_fixed_on_random_graphs_parallel(g in graph_strategy(6)) {
        assert_auto_matches_fixed(&g, 4);
    }
}

/// The planner's favorite corpus: chained cycles decompose into one
/// atom per cycle, so Auto's cursor reordering and per-atom thread
/// split drive the composed odometer — exactly the machinery that must
/// not leak into the answer.
#[test]
fn auto_matches_fixed_on_chained_cycles() {
    for shape in [&[4usize, 6][..], &[4, 5, 6], &[5, 5]] {
        let g = chained_cycles(shape);
        let untaught = assert_auto_matches_fixed(&g, 4);
        assert!(!untaught, "chained cycles must have learned a profile");
    }
}

/// Ranked best-k under Auto keeps the ranked answer contract: same
/// winners, same order as Fixed, cold and warm.
#[test]
fn auto_best_k_matches_fixed_on_chained_cycles() {
    let g = chained_cycles(&[4, 5, 6]);
    let auto_engine = Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let fixed_engine = Engine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let fills = |engine: &Engine, policy: ExecPolicy| -> Vec<Vec<(Node, Node)>> {
        let mut resp = engine.run(&g, Query::best_k(7, CostMeasure::Fill).policy(policy));
        resp.triangulations().into_iter().map(|t| t.fill).collect()
    };
    for round in ["cold", "warm"] {
        assert_eq!(
            fills(&auto_engine, ExecPolicy::auto()),
            fills(&fixed_engine, ExecPolicy::fixed()),
            "best-k winners diverged ({round})"
        );
        auto_engine.clear_sessions();
        fixed_engine.clear_sessions();
    }
}

//! Cross-crate integration tests: the full pipeline from an input graph to
//! validated minimal triangulations and proper tree decompositions.

use mintri::core::{
    AnytimeSearch, BruteForce, EnumerationBudget, MinimalTriangulationsEnumerator,
    ProperTreeDecompositions,
};
use mintri::prelude::*;
use mintri::sgr::PrintMode;
use mintri::treedecomp::spanning::{MaxWeightSpanningForests, WeightedGraph};
use mintri::triangulate::{minimal_triangulation, McsM};
use mintri::workloads::random::grid;
use mintri::workloads::tpch_query;

#[test]
fn grid_pipeline_produces_validated_proper_decompositions() {
    let g = grid(3, 3);
    let mut count = 0;
    for d in ProperTreeDecompositions::new(&g).take(200) {
        assert!(d.validate(&g).is_ok(), "invalid TD: {d:?}");
        assert!(d.is_proper(&g), "improper TD: {d:?}");
        // saturating the bags yields a chordal, minimal triangulation
        let h = d.saturate(&g);
        assert!(is_chordal(&h));
        assert!(is_minimal_triangulation(&g, &h));
        count += 1;
    }
    assert!(count >= 50, "3x3 grids have many proper decompositions");
}

#[test]
fn first_result_is_the_plain_heuristic_result() {
    // Section 6.3: "the natural benchmark for quality is the first result,
    // as it is the result we would get by running the minimal triangulation
    // algorithm on the original input graph."
    for g in [grid(3, 4), Graph::cycle(9), tpch_query(9).graph] {
        let direct = minimal_triangulation(&g, &McsM);
        let first = MinimalTriangulationsEnumerator::new(&g)
            .next()
            .expect("every graph has a minimal triangulation");
        assert_eq!(first.graph, direct.graph);
    }
}

#[test]
fn all_mode_count_is_the_sum_of_clique_tree_counts() {
    let g = Graph::from_edges(
        7,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (2, 4),
            (4, 5),
            (5, 6),
            (6, 2),
        ],
    );
    let per_class: usize = MinimalTriangulationsEnumerator::new(&g)
        .map(|tri| {
            // count the clique trees of this triangulation independently
            let cliques = maximal_cliques(&tri.graph).into_iter().collect::<Vec<_>>();
            let mut edges = Vec::new();
            for i in 0..cliques.len() {
                for j in (i + 1)..cliques.len() {
                    let w = cliques[i].intersection_len(&cliques[j]) as i64;
                    if w > 0 {
                        edges.push((i, j, w));
                    }
                }
            }
            MaxWeightSpanningForests::new(WeightedGraph {
                num_nodes: cliques.len(),
                edges,
            })
            .count()
        })
        .sum();
    let streamed = ProperTreeDecompositions::new(&g).count();
    assert_eq!(streamed, per_class);
}

#[test]
fn one_per_class_matches_triangulation_count_on_tpch() {
    for number in [5u8, 8, 10] {
        let q = tpch_query(number);
        let tris = MinimalTriangulationsEnumerator::new(&q.graph).count();
        let classes = ProperTreeDecompositions::one_per_class(&q.graph).count();
        assert_eq!(tris, classes, "Q{number}");
    }
}

#[test]
fn decomposition_width_equals_triangulation_width() {
    let g = Graph::cycle(7);
    for tri in MinimalTriangulationsEnumerator::new(&g) {
        let forest = CliqueForest::build(&tri.graph);
        assert_eq!(forest.width(), tri.width());
        assert_eq!(forest.width(), treewidth_of_chordal(&tri.graph));
    }
}

#[test]
fn facade_prelude_covers_the_workflow() {
    // everything a downstream user needs is reachable from the prelude
    let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let seps: Vec<NodeSet> = MinimalSeparatorIter::new(&g).collect();
    assert_eq!(seps.len(), 5);
    assert!(crossing(&g, &seps[0], &seps[1]) || !crossing(&g, &seps[0], &seps[1]));
    let tri = McsM.triangulate(&g);
    assert!(is_chordal(&tri.graph));
    let count = MinimalTriangulationsEnumerator::new(&g).count();
    assert_eq!(count, 5);
}

#[test]
fn budgeted_run_agrees_with_unbudgeted_prefix() {
    let g = Graph::cycle(8);
    let budgeted = AnytimeSearch::new(&g)
        .budget(EnumerationBudget::results(10))
        .run();
    assert_eq!(budgeted.records.len(), 10);
    let full: Vec<_> = MinimalTriangulationsEnumerator::new(&g).collect();
    assert_eq!(full.len(), 132); // Catalan(6)
    for (r, t) in budgeted.records.iter().zip(&full) {
        assert_eq!(r.width, t.width());
        assert_eq!(r.fill, t.fill_count());
    }
}

#[test]
fn print_modes_cover_the_same_answers_through_the_facade() {
    let g = tpch_query(10).graph;
    let run = |mode| {
        let mut v: Vec<_> = MinimalTriangulationsEnumerator::with_config(&g, Box::new(McsM), mode)
            .map(|t| t.graph.edges())
            .collect();
        v.sort();
        v
    };
    assert_eq!(run(PrintMode::UponGeneration), run(PrintMode::UponPop));
}

#[test]
fn enumerator_matches_brute_force_through_the_facade() {
    let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]);
    let fast = MinimalTriangulationsEnumerator::new(&g).count();
    assert_eq!(fast, BruteForce::count_minimal_triangulations(&g));
}

#[test]
fn stats_reflect_the_work_done() {
    let g = Graph::cycle(6);
    let mut e = MinimalTriangulationsEnumerator::new(&g);
    let n = e.by_ref().count();
    assert_eq!(n, 14);
    let es = e.enum_stats();
    assert_eq!(es.answers, 14);
    assert_eq!(es.nodes_generated, 9, "C6 has 9 minimal separators");
    let ms = e.msgraph_stats();
    assert_eq!(ms.separators_interned, 9);
    assert!(ms.extends >= 14);
    assert!(ms.crossing_cached + ms.crossing_computed <= es.edge_queries);
}

//! The CLI's `--format json` output must parse with the shared
//! `mintri_core::json` parser — no more write-only JSON. These tests run
//! the real `mintri` binary on a temp graph file and parse its stdout.

use mintri::core::json::JsonValue;
use std::process::Command;

const DIMACS_C6: &str = "p edge 6 6\ne 1 2\ne 2 3\ne 3 4\ne 4 5\ne 5 6\ne 6 1\n";

fn graph_file() -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("mintri_cli_json_c6_{}.col", std::process::id()));
    std::fs::write(&path, DIMACS_C6).expect("write temp graph");
    path
}

fn run_json(args: &[&str]) -> JsonValue {
    let out = Command::new(env!("CARGO_BIN_EXE_mintri"))
        .args(args)
        .output()
        .expect("run mintri");
    assert!(
        out.status.success(),
        "mintri {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    JsonValue::parse(stdout.trim())
        .unwrap_or_else(|e| panic!("mintri {args:?} emitted unparseable JSON: {e}\n{stdout}"))
}

#[test]
fn every_json_command_parses_back() {
    let path = graph_file();
    let input = path.to_str().unwrap();

    let doc = run_json(&["stats", "--input", input, "--format", "json"]);
    assert_eq!(doc.get("command").unwrap().as_str(), Some("stats"));
    assert_eq!(doc.get("chordal").unwrap().as_bool(), Some(false));

    let doc = run_json(&["atoms", "--input", input, "--format", "json"]);
    assert_eq!(doc.get("atoms").unwrap().as_array().unwrap().len(), 1);

    let doc = run_json(&["triangulate", "--input", input, "--format", "json"]);
    assert_eq!(doc.get("algo").unwrap().as_str(), Some("MCS_M"));
    assert!(doc.get("fill").unwrap().as_array().is_some());

    let doc = run_json(&["enumerate", "--input", input, "--format", "json"]);
    assert_eq!(doc.get("command").unwrap().as_str(), Some("enumerate"));
    assert_eq!(doc.get("results").unwrap().as_array().unwrap().len(), 14);
    let outcome = doc.get("outcome").unwrap();
    assert_eq!(outcome.get("completed").unwrap().as_bool(), Some(true));
    assert_eq!(outcome.get("scanned").unwrap().as_usize(), Some(14));

    let doc = run_json(&[
        "best-k", "--input", input, "--k", "3", "--by", "fill", "--format", "json",
    ]);
    assert_eq!(doc.get("results").unwrap().as_array().unwrap().len(), 3);

    let doc = run_json(&["decompose", "--input", input, "--format", "json"]);
    assert!(!doc.get("results").unwrap().as_array().unwrap().is_empty());

    std::fs::remove_file(&path).ok();
}

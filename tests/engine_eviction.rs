//! Eviction under concurrent traffic — the serving-layer scenario the
//! HTTP transport creates: many clients hammering *distinct* graphs
//! through one shared engine whose session store is far smaller than the
//! working set. The store must never deadlock, never corrupt an answer,
//! and never invalidate a session mid-query (an in-flight `Response`
//! keeps its session alive through its `Arc` even after the LRU drops
//! it).

use mintri::engine::{Engine, EngineConfig};
use mintri::prelude::*;
use mintri::workloads::random::chord_cycle;
use std::sync::Arc;

#[test]
fn concurrent_clients_past_the_session_cap_stay_correct() {
    let engine = Arc::new(Engine::with_config(EngineConfig {
        threads: 1,
        max_sessions: 2, // far below the 8-graph working set
        ..EngineConfig::default()
    }));
    // Planning is left ON: each graph splits into two cycle atoms, so
    // the store also churns on *shared* atom sessions while whole
    // graphs come and go.
    let graphs: Vec<Graph> = (2..8).map(|j| chord_cycle(9, j)).collect();
    let expected: Vec<usize> = graphs
        .iter()
        .map(|g| Query::enumerate().run_local(g).count())
        .collect();
    assert!(expected.iter().all(|&n| n > 0));

    let mut clients = Vec::new();
    for (g, want) in graphs.iter().cloned().zip(expected.iter().copied()) {
        let engine = Arc::clone(&engine);
        clients.push(std::thread::spawn(move || {
            for round in 0..6 {
                let got = engine.run(&g, Query::enumerate()).count();
                assert_eq!(got, want, "round {round} returned a wrong answer set");
            }
        }));
    }
    for client in clients {
        client.join().expect("no client may panic or deadlock");
    }
    assert!(
        engine.sessions_cached() <= 2,
        "the LRU cap holds under concurrency"
    );
}

#[test]
fn eviction_mid_query_does_not_cut_the_stream() {
    let engine = Engine::with_config(EngineConfig {
        threads: 1,
        max_sessions: 1,
        ..EngineConfig::default()
    });
    let g = Graph::cycle(9);
    let expected = Query::enumerate().run_local(&g).count();

    let mut response = engine.run(&g, Query::enumerate());
    assert!(response.next().is_some(), "stream is live");

    // Evict the session both explicitly and by LRU pressure while the
    // response is mid-stream.
    engine.evict(&g);
    for j in 2..6 {
        let other = chord_cycle(7, j);
        let _ = engine.run(&other, Query::enumerate()).count();
    }
    assert_eq!(
        engine.sessions_cached(),
        1,
        "the hammered graphs displaced everything"
    );

    // The in-flight stream still owns its session: it completes, and
    // completely.
    let rest = response.count();
    assert_eq!(
        1 + rest,
        expected,
        "eviction must not truncate a live query"
    );
}

#[test]
fn racing_first_queries_on_one_graph_share_a_session() {
    // The double-checked insert: N threads discover the same cold graph
    // at once; exactly one session must win and all answers agree.
    let engine = Arc::new(Engine::with_config(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    }));
    let g = Graph::cycle(8);
    let expected = Query::enumerate().run_local(&g).count();
    let barrier = Arc::new(std::sync::Barrier::new(6));
    let mut racers = Vec::new();
    for _ in 0..6 {
        let engine = Arc::clone(&engine);
        let g = g.clone();
        let barrier = Arc::clone(&barrier);
        racers.push(std::thread::spawn(move || {
            barrier.wait();
            engine.run(&g, Query::enumerate()).count()
        }));
    }
    for racer in racers {
        assert_eq!(racer.join().expect("racer"), expected);
    }
    assert_eq!(
        engine.sessions_cached(),
        1,
        "losing builders must discard their duplicate session"
    );
}

//! Tests pinned to specific theorems and claims of the paper — each test
//! names the statement it exercises.

use mintri::core::MinimalTriangulationsEnumerator;
use mintri::prelude::*;
use mintri::separators::all_minimal_separators;
use mintri::workloads::random::erdos_renyi;

/// Theorem 2.1 (Dirac): a graph is chordal iff every minimal separator is a
/// clique.
#[test]
fn dirac_characterization() {
    for seed in 0..20 {
        let g = erdos_renyi(9, 0.35, seed);
        let seps = all_minimal_separators(&g);
        let all_cliques = seps.iter().all(|s| g.is_clique(s));
        assert_eq!(
            is_chordal(&g),
            all_cliques,
            "Dirac fails on seed {seed}: {g:?}"
        );
    }
}

/// Theorem 2.2 / Rose: a chordal graph has fewer minimal separators than
/// nodes, and they are computable from the clique tree.
#[test]
fn rose_bound_and_kumar_madhavan_extraction() {
    for seed in 0..20 {
        let g = erdos_renyi(10, 0.3, seed);
        let tri = McsM.triangulate(&g); // chordal by construction
        let h = &tri.graph;
        let from_tree = {
            let mut s = mintri::chordal::minimal_separators_of_chordal(h);
            s.sort();
            s
        };
        assert!(from_tree.len() < h.num_nodes().max(1), "Rose bound");
        assert_eq!(from_tree, all_minimal_separators(h), "Kumar–Madhavan");
    }
}

/// Section 2.2: the crossing relation is symmetric on minimal separators
/// (Parra–Scheffler / Kloks–Kratsch–Spinrad).
#[test]
fn crossing_symmetry() {
    for seed in 0..10 {
        let g = erdos_renyi(8, 0.3, seed);
        let seps = all_minimal_separators(&g);
        for s in &seps {
            for t in &seps {
                assert_eq!(crossing(&g, s, t), crossing(&g, t, s));
            }
        }
    }
}

/// Theorem 4.1 (Parra–Scheffler): for every minimal triangulation `h` of
/// `g`, `MinSep(h)` is a maximal set of pairwise-parallel minimal
/// separators of `g`, and saturating it recovers `h`.
#[test]
fn parra_scheffler_bijection() {
    let g = Graph::cycle(6);
    let all_seps = all_minimal_separators(&g);
    for tri in MinimalTriangulationsEnumerator::new(&g) {
        let h = &tri.graph;
        let h_seps = all_minimal_separators(h);
        // every separator of h is a minimal separator of g...
        for s in &h_seps {
            assert!(
                all_seps.contains(s),
                "{s:?} is not a minimal separator of g"
            );
        }
        // ...pairwise parallel in g...
        for s in &h_seps {
            for t in &h_seps {
                assert!(!crossing(&g, s, t));
            }
        }
        // ...maximal: every other separator of g crosses some member...
        for s in &all_seps {
            if !h_seps.contains(s) {
                assert!(
                    h_seps.iter().any(|t| crossing(&g, s, t)),
                    "{s:?} could extend the set"
                );
            }
        }
        // ...and g[MinSep(h)] = h.
        let mut resat = g.clone();
        for s in &h_seps {
            resat.saturate(s);
        }
        assert_eq!(&resat, h);
    }
}

/// Corollary 4.3: independent sets of the separator graph have fewer than
/// `|V(g)|` members.
#[test]
fn independent_sets_are_small() {
    let g = Graph::cycle(9);
    for tri in MinimalTriangulationsEnumerator::new(&g) {
        let h_seps = all_minimal_separators(&tri.graph);
        assert!(h_seps.len() < g.num_nodes());
    }
}

/// Proposition 5.3: every clique of `g` is contained in some bag of every
/// tree decomposition of `g`.
#[test]
fn cliques_are_covered_by_bags() {
    let g = erdos_renyi(8, 0.5, 3);
    let cliques = maximal_cliques(&g);
    for d in mintri::core::ProperTreeDecompositions::new(&g).take(20) {
        for c in &cliques {
            assert!(
                d.bags.iter().any(|b| c.is_subset(b)),
                "clique {c:?} not covered"
            );
        }
    }
}

/// Proposition 5.4: the bags of a proper tree decomposition form an
/// antichain under inclusion.
#[test]
fn proper_bags_are_an_antichain() {
    let g = erdos_renyi(9, 0.35, 5);
    for d in mintri::core::ProperTreeDecompositions::new(&g).take(30) {
        for (i, a) in d.bags.iter().enumerate() {
            for (j, b) in d.bags.iter().enumerate() {
                if i != j {
                    assert!(!a.is_subset(b), "bag {a:?} ⊆ bag {b:?}");
                }
            }
        }
    }
}

/// Lemma 5.6: a proper tree decomposition of a *chordal* graph has exactly
/// the maximal cliques as bags.
#[test]
fn proper_decompositions_of_chordal_graphs_use_maximal_cliques() {
    let g = {
        let mut g = Graph::cycle(7);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        g.add_edge(0, 4);
        g.add_edge(0, 5);
        g
    };
    assert!(is_chordal(&g));
    let mut cliques = maximal_cliques(&g);
    cliques.sort();
    for d in mintri::core::ProperTreeDecompositions::new(&g) {
        let mut bags = d.bags.clone();
        bags.sort();
        assert_eq!(bags, cliques);
    }
}

/// Theorem 5.1 / Lemma 5.7: the map triangulation → bag configuration is a
/// bijection: distinct triangulations have distinct bag sets, and
/// `saturate(g, d)` recovers the triangulation.
#[test]
fn bijection_between_triangulations_and_bag_configurations() {
    let g = Graph::cycle(6);
    let mut seen_bag_sets = Vec::new();
    for tri in MinimalTriangulationsEnumerator::new(&g) {
        let forest = CliqueForest::build(&tri.graph);
        let d = TreeDecomposition {
            bags: forest.cliques,
            edges: forest.edges,
        };
        let mut bags = d.bags.clone();
        bags.sort();
        assert!(
            !seen_bag_sets.contains(&bags),
            "two triangulations share a bag configuration"
        );
        assert_eq!(d.saturate(&g), tri.graph, "M is invertible by saturation");
        seen_bag_sets.push(bags);
    }
    assert_eq!(seen_bag_sets.len(), 14);
}

/// Section 2.3: a chordal graph is the unique minimal triangulation of
/// itself.
#[test]
fn chordal_graphs_are_their_own_unique_triangulation() {
    for seed in 0..10 {
        let g = McsM.triangulate(&erdos_renyi(9, 0.3, seed)).graph;
        let all: Vec<_> = MinimalTriangulationsEnumerator::new(&g).collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].graph, g);
    }
}

/// Gavril: chordal graphs have at most `n` maximal cliques — so proper tree
/// decompositions have at most `n` bags (used for the polynomial-delay
/// clique-tree enumeration of Theorem 5.1).
#[test]
fn gavril_bag_count_bound() {
    for seed in 0..10 {
        let g = erdos_renyi(10, 0.4, seed);
        for d in mintri::core::ProperTreeDecompositions::one_per_class(&g).take(10) {
            assert!(d.num_bags() <= g.num_nodes());
        }
    }
}

/// The treewidth is attained by some minimal triangulation — so exhaustive
/// enumeration must reach the exact treewidth (the paper's premise that
/// enumerating can only improve on a heuristic's width).
#[test]
fn enumeration_reaches_the_exact_treewidth() {
    use mintri::treedecomp::exact_treewidth;
    for seed in 0..8 {
        let g = erdos_renyi(8, 0.4, seed);
        let tw = exact_treewidth(&g);
        let min_width = MinimalTriangulationsEnumerator::new(&g)
            .map(|t| t.width())
            .min()
            .expect("at least one triangulation");
        assert_eq!(min_width, tw, "seed {seed}");
        // ...and no triangulation can beat the treewidth
        for t in MinimalTriangulationsEnumerator::new(&g) {
            assert!(t.width() >= tw);
        }
    }
}

/// Theorem 4.4 (Heggernes): for any set `φ` of pairwise-parallel minimal
/// separators of `g`, (1) `φ ⊆ ClqMinSep(g[φ])`, (2) `ClqMinSep(g) ⊆
/// MinSep(g[φ])`, and (3) every minimal triangulation of `g[φ]` is a
/// minimal triangulation of `g` — the correctness backbone of `Extend`.
#[test]
fn heggernes_saturation_theorem() {
    use mintri::separators::{clique_minimal_separators, is_clique_minimal_separator};
    for seed in 0..10 {
        let g = erdos_renyi(8, 0.35, seed);
        let seps = all_minimal_separators(&g);
        // pick a greedy pairwise-parallel subset φ
        let mut phi: Vec<_> = Vec::new();
        for s in &seps {
            if phi.iter().all(|t| !crossing(&g, s, t)) {
                phi.push(s.clone());
            }
        }
        let mut gphi = g.clone();
        for s in &phi {
            gphi.saturate(s);
        }
        // (1) φ consists of clique minimal separators of g[φ]
        for s in &phi {
            assert!(
                is_clique_minimal_separator(&gphi, s),
                "seed {seed}: {s:?} not a clique minimal separator of g[φ]"
            );
        }
        // (2) every clique minimal separator of g is a minimal separator of g[φ]
        let gphi_seps = all_minimal_separators(&gphi);
        for s in clique_minimal_separators(&g) {
            assert!(
                gphi_seps.contains(&s),
                "seed {seed}: {s:?} lost by saturation"
            );
        }
        // (3) a minimal triangulation of g[φ] is a minimal triangulation of g
        let h = McsM.triangulate(&gphi).graph;
        assert!(is_minimal_triangulation(&g, &h), "seed {seed}");
    }
}

/// The eager (materialized, polynomial-delay) engine of the Section 7
/// remark agrees with the lazy engine on random inputs.
#[test]
fn eager_engine_agrees_with_lazy_engine() {
    use mintri::core::EagerMinimalTriangulations;
    for seed in 0..8 {
        let g = erdos_renyi(8, 0.35, seed);
        let mut eager: Vec<_> = EagerMinimalTriangulations::new(&g)
            .map(|t| t.graph.edges())
            .collect();
        eager.sort();
        let mut lazy: Vec<_> = MinimalTriangulationsEnumerator::new(&g)
            .map(|t| t.graph.edges())
            .collect();
        lazy.sort();
        assert_eq!(eager, lazy, "seed {seed}");
    }
}

//! Drop-robustness of the parallel drivers: abandoning an enumeration
//! after an arbitrary prefix — in either delivery mode, at any thread
//! count — must neither deadlock nor leak pool threads. The same
//! guarantees hold one layer up, for the query front door: a
//! [`Response`] whose budget trips, or that is cancelled mid-stream
//! (from the consumer or from another thread), must end its stream and
//! join every worker.
//!
//! This lives in its own test binary on purpose: the leak check counts
//! the process's live OS threads via `/proc/self/task`, which is only
//! meaningful when no sibling test is spinning pools up and down
//! concurrently.

use mintri::core::{CostMeasure, MinimalTriangulationsEnumerator};
use mintri::engine::{Delivery, Engine, EngineConfig, ParallelEnumerator};
use mintri::prelude::*;
use mintri::triangulate::McsM;
use mintri::workloads::random::erdos_renyi;
use proptest::prelude::*;
use std::time::Duration;

/// Live OS threads of this process; 0 when `/proc` is unavailable (the
/// assertions degrade to no-ops there).
fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

/// Waits (briefly) for the thread count to drop back to `baseline` —
/// `pthread_join` returns before the kernel reaps the task entry, so a
/// freshly joined worker can linger in `/proc` for a moment.
fn settles_to(baseline: usize) -> bool {
    for _ in 0..200 {
        if live_threads() <= baseline {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// A parallel engine plus a graph with plenty of results (the delivery
/// contract is chosen per query).
fn launch(threads: usize) -> (Engine, Graph) {
    let engine = Engine::with_config(EngineConfig {
        threads,
        channel_capacity: 2, // small: exercise workers parked in send()
        ..EngineConfig::default()
    });
    let g = erdos_renyi(16, 0.3, 7);
    (engine, g)
}

#[test]
fn response_cancel_mid_stream_is_honored_in_both_deliveries() {
    for delivery in [Delivery::Unordered, Delivery::Deterministic] {
        let baseline = live_threads();
        let (engine, g) = launch(4);
        let mut response = engine.run(
            &g,
            Query::enumerate().policy(ExecPolicy::fixed().with_threads(4).with_delivery(delivery)),
        );
        assert!(response.next().is_some(), "{delivery:?}: first result");
        assert!(response.next().is_some(), "{delivery:?}: second result");
        response.cancel();
        // The stream must end promptly — not hang, not keep producing.
        assert!(
            response.next().is_none(),
            "{delivery:?}: cancel must end the stream"
        );
        let outcome = response.outcome();
        assert!(outcome.cancelled, "{delivery:?}: cancelled flag");
        assert!(!outcome.completed, "{delivery:?}: not complete");
        assert_eq!(outcome.produced, 2);
        drop(response);
        if baseline > 0 {
            assert!(
                settles_to(baseline),
                "{delivery:?}: worker threads leaked after cancel: {} live, baseline {}",
                live_threads(),
                baseline
            );
        }
    }
}

#[test]
fn cross_thread_cancel_unblocks_a_draining_consumer() {
    for delivery in [Delivery::Unordered, Delivery::Deterministic] {
        let baseline = live_threads();
        let (engine, g) = launch(4);
        // Safety net: if cancellation were broken the budget still ends
        // the run, and the `cancelled` assertion below catches the bug
        // instead of the suite hanging.
        let mut response = engine.run(
            &g,
            Query::enumerate()
                .policy(ExecPolicy::fixed().with_threads(4).with_delivery(delivery))
                .budget(EnumerationBudget::results(200_000)),
        );
        let token = response.cancel_token();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            token.cancel();
        });
        // Drain until the stream ends — mid-stream, whenever the cancel
        // lands, including while parked on the parallel result channel.
        let drained = response.by_ref().count();
        canceller.join().unwrap();
        let outcome = response.outcome();
        assert!(
            outcome.cancelled,
            "{delivery:?}: the cross-thread cancel must have ended the run \
             (drained {drained} results)"
        );
        drop(response);
        if baseline > 0 {
            assert!(
                settles_to(baseline),
                "{delivery:?}: worker threads leaked after cross-thread cancel"
            );
        }
    }
}

#[test]
fn result_budget_mid_stream_joins_workers_in_both_deliveries() {
    for delivery in [Delivery::Unordered, Delivery::Deterministic] {
        let baseline = live_threads();
        let (engine, g) = launch(4);
        let mut response = engine.run(
            &g,
            Query::enumerate()
                .policy(ExecPolicy::fixed().with_threads(4).with_delivery(delivery))
                .budget(EnumerationBudget::results(7)),
        );
        assert_eq!(response.by_ref().count(), 7, "{delivery:?}");
        let outcome = response.outcome();
        assert!(!outcome.completed, "{delivery:?}: budget, not completion");
        assert!(!outcome.cancelled, "{delivery:?}");
        drop(response);
        if baseline > 0 {
            assert!(
                settles_to(baseline),
                "{delivery:?}: worker threads leaked after budget stop"
            );
        }
    }
}

#[test]
fn time_budget_mid_stream_joins_workers_in_both_deliveries() {
    for delivery in [Delivery::Unordered, Delivery::Deterministic] {
        let baseline = live_threads();
        let (engine, g) = launch(4);
        let mut response = engine.run(
            &g,
            Query::enumerate()
                .policy(ExecPolicy::fixed().with_threads(4).with_delivery(delivery))
                // Generous result cap as the hang safety-net; the clock
                // trips far earlier.
                .budget(EnumerationBudget::results_or_time(
                    200_000,
                    Duration::from_millis(40),
                )),
        );
        let n = response.by_ref().count();
        let outcome = response.outcome();
        assert!(
            !outcome.completed || n < 200_000,
            "{delivery:?}: the run must have been timeboxed"
        );
        drop(response);
        if baseline > 0 {
            assert!(
                settles_to(baseline),
                "{delivery:?}: worker threads leaked after timeout"
            );
        }
    }
}

#[test]
fn cancel_mid_ranked_best_k_yields_the_proven_prefix_and_joins_workers() {
    let baseline = live_threads();
    let (engine, g) = launch(4);
    // Large k so the ranked stream has plenty left to emit when the
    // cancel lands; the results already out are proven winners.
    let mut response = engine.run(
        &g,
        Query::best_k(100_000, CostMeasure::Fill).policy(ExecPolicy::fixed().with_threads(4)),
    );
    assert!(response.next().is_some(), "first ranked result");
    assert!(response.next().is_some(), "second ranked result");
    response.cancel();
    assert!(
        response.next().is_none(),
        "cancel must end the ranked stream"
    );
    let outcome = response.outcome();
    assert!(outcome.cancelled);
    assert!(!outcome.completed);
    assert_eq!(outcome.produced, 2);
    drop(response);
    if baseline > 0 {
        assert!(
            settles_to(baseline),
            "worker threads leaked after mid-ranked cancel: {} live, baseline {}",
            live_threads(),
            baseline
        );
    }
}

#[test]
fn result_budget_mid_ranked_best_k_bounds_emissions_and_joins_workers() {
    let baseline = live_threads();
    let (engine, g) = launch(4);
    let mut response = engine.run(
        &g,
        Query::best_k(100_000, CostMeasure::Fill)
            .policy(ExecPolicy::fixed().with_threads(4))
            .budget(EnumerationBudget::results(5)),
    );
    assert_eq!(response.by_ref().count(), 5);
    let outcome = response.outcome();
    assert!(!outcome.completed, "budget stop, not completion");
    assert!(!outcome.cancelled);
    drop(response);
    if baseline > 0 {
        assert!(
            settles_to(baseline),
            "worker threads leaked after mid-ranked budget stop"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Drop either driver after a random prefix of a random-size run:
    /// `Drop` must join every worker (the test hangs on deadlock and the
    /// thread count exposes a leak) and the prefix itself must be a
    /// prefix of the sequential answer set's size.
    #[test]
    fn dropping_either_driver_after_a_random_prefix_is_clean(
        seed in 0u64..1000,
        prefix in 0usize..12,
        threads in 1usize..5,
        deterministic in any::<bool>(),
    ) {
        let baseline = live_threads();
        let g = erdos_renyi(12, 0.3, seed);
        let delivery = if deterministic {
            Delivery::Deterministic
        } else {
            Delivery::Unordered
        };
        let mut e = ParallelEnumerator::with_config(
            &g,
            Box::new(McsM),
            &EngineConfig {
                threads,
                delivery,
                channel_capacity: 2, // small: exercise workers parked in send()
                ..EngineConfig::default()
            },
        );
        let taken = e.by_ref().take(prefix).count();
        let total = MinimalTriangulationsEnumerator::new(&g).count();
        prop_assert_eq!(taken, prefix.min(total));
        drop(e); // must join all workers without deadlocking…
        if baseline > 0 {
            // …and leave no pool thread behind.
            prop_assert!(
                settles_to(baseline),
                "worker threads leaked: {} live, baseline {}",
                live_threads(),
                baseline
            );
        }
    }
}

//! Drop-robustness of the parallel drivers: abandoning an enumeration
//! after an arbitrary prefix — in either delivery mode, at any thread
//! count — must neither deadlock nor leak pool threads.
//!
//! This lives in its own test binary on purpose: the leak check counts
//! the process's live OS threads via `/proc/self/task`, which is only
//! meaningful when no sibling test is spinning pools up and down
//! concurrently.

use mintri::core::MinimalTriangulationsEnumerator;
use mintri::engine::{Delivery, EngineConfig, ParallelEnumerator};
use mintri::triangulate::McsM;
use mintri::workloads::random::erdos_renyi;
use proptest::prelude::*;
use std::time::Duration;

/// Live OS threads of this process; 0 when `/proc` is unavailable (the
/// assertions degrade to no-ops there).
fn live_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .map(|d| d.count())
        .unwrap_or(0)
}

/// Waits (briefly) for the thread count to drop back to `baseline` —
/// `pthread_join` returns before the kernel reaps the task entry, so a
/// freshly joined worker can linger in `/proc` for a moment.
fn settles_to(baseline: usize) -> bool {
    for _ in 0..200 {
        if live_threads() <= baseline {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Drop either driver after a random prefix of a random-size run:
    /// `Drop` must join every worker (the test hangs on deadlock and the
    /// thread count exposes a leak) and the prefix itself must be a
    /// prefix of the sequential answer set's size.
    #[test]
    fn dropping_either_driver_after_a_random_prefix_is_clean(
        seed in 0u64..1000,
        prefix in 0usize..12,
        threads in 1usize..5,
        deterministic in any::<bool>(),
    ) {
        let baseline = live_threads();
        let g = erdos_renyi(12, 0.3, seed);
        let delivery = if deterministic {
            Delivery::Deterministic
        } else {
            Delivery::Unordered
        };
        let mut e = ParallelEnumerator::with_config(
            &g,
            Box::new(McsM),
            &EngineConfig {
                threads,
                delivery,
                channel_capacity: 2, // small: exercise workers parked in send()
                ..EngineConfig::default()
            },
        );
        let taken = e.by_ref().take(prefix).count();
        let total = MinimalTriangulationsEnumerator::new(&g).count();
        prop_assert_eq!(taken, prefix.min(total));
        drop(e); // must join all workers without deadlocking…
        if baseline > 0 {
            // …and leave no pool thread behind.
            prop_assert!(
                settles_to(baseline),
                "worker threads leaked: {} live, baseline {}",
                live_threads(),
                baseline
            );
        }
    }
}

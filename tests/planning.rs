//! The planning-layer reduction, pinned:
//!
//! * planned enumeration is **set- and count-identical** to the
//!   unreduced whole-graph path — property-tested over random `G(n,p)`
//!   graphs (which are frequently disconnected and pendant-heavy, i.e.
//!   atom-rich), explicit disconnected compositions, and graphs that
//!   are already chordal / atom-free;
//! * the composed `Delivery::Deterministic` order is **stable across
//!   thread counts** and identical to `run_local`'s planned order;
//! * budgets and cancellation cut composed streams exactly like flat
//!   ones.

use mintri::prelude::*;
use mintri::workloads::random::{chained_cycles, erdos_renyi};
use proptest::prelude::*;

fn sorted_edges(tris: Vec<Triangulation>) -> Vec<Vec<(Node, Node)>> {
    let mut out: Vec<_> = tris.iter().map(|t| t.graph.edges()).collect();
    out.sort();
    out
}

fn planned_local(g: &Graph) -> Vec<Vec<(Node, Node)>> {
    sorted_edges(Query::enumerate().run_local(g).triangulations())
}

fn unreduced_local(g: &Graph) -> Vec<Vec<(Node, Node)>> {
    sorted_edges(
        Query::enumerate()
            .policy(ExecPolicy::fixed().with_planned(false))
            .run_local(g)
            .triangulations(),
    )
}

#[test]
fn chained_cycles_plan_one_atom_per_cycle() {
    let g = chained_cycles(&[6, 5, 7]);
    let plan = Plan::of(&g);
    assert_eq!(plan.atoms.len(), 3);
    assert_eq!(plan.decomposition.separators.len(), 2);
    // Catalan(4) × Catalan(3) × Catalan(5)
    let results = Query::enumerate().run_local(&g).triangulations();
    assert_eq!(results.len(), 14 * 5 * 42);
}

#[test]
fn planned_matches_unreduced_on_disconnected_graphs() {
    // C4 + C5 + P3 + isolated vertex
    let g = Graph::from_edges(
        13,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (4, 5),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 4),
            (9, 10),
            (10, 11),
        ],
    );
    let planned = planned_local(&g);
    assert_eq!(planned.len(), 2 * 5);
    assert_eq!(planned, unreduced_local(&g));
}

#[test]
fn planned_matches_unreduced_on_chordal_graphs() {
    for g in [
        Graph::path(8),
        Graph::complete(5),
        McsM.triangulate(&erdos_renyi(10, 0.3, 7)).graph,
        Graph::new(4),
    ] {
        let planned = planned_local(&g);
        assert_eq!(planned.len(), 1, "chordal graphs have one triangulation");
        assert_eq!(planned, unreduced_local(&g));
    }
}

#[cfg(feature = "parallel")]
#[test]
fn composed_deterministic_order_is_stable_across_thread_counts() {
    let g = chained_cycles(&[6, 4, 5]);
    let reference: Vec<_> = Query::enumerate()
        .run_local(&g)
        .triangulations()
        .iter()
        .map(|t| t.graph.edges())
        .collect();
    assert_eq!(reference.len(), 14 * 2 * 5);
    for threads in [1usize, 2, 4] {
        let engine = Engine::new();
        let got: Vec<_> = engine
            .run(
                &g,
                Query::enumerate().policy(
                    ExecPolicy::fixed()
                        .with_threads(threads)
                        .with_delivery(Delivery::Deterministic),
                ),
            )
            .filter_map(QueryItem::into_triangulation)
            .map(|t| t.graph.edges())
            .collect();
        assert_eq!(
            got, reference,
            "composed order diverged at {threads} threads"
        );
        // …and the deterministic replay preserves it too.
        let replay = engine.run(
            &g,
            Query::enumerate().policy(
                ExecPolicy::fixed()
                    .with_threads(threads)
                    .with_delivery(Delivery::Deterministic),
            ),
        );
        assert!(replay.is_replay());
        let replayed: Vec<_> = replay
            .filter_map(QueryItem::into_triangulation)
            .map(|t| t.graph.edges())
            .collect();
        assert_eq!(
            replayed, reference,
            "replay order diverged at {threads} threads"
        );
    }
}

#[cfg(feature = "parallel")]
#[test]
fn composed_unordered_engine_queries_match_the_set() {
    let g = chained_cycles(&[5, 6]);
    let reference = planned_local(&g);
    for threads in [2usize, 4] {
        let engine = Engine::new();
        let got = sorted_edges(
            engine
                .run(
                    &g,
                    Query::enumerate().policy(ExecPolicy::fixed().with_threads(threads)),
                )
                .filter_map(QueryItem::into_triangulation)
                .collect(),
        );
        assert_eq!(got, reference, "{threads} threads");
    }
}

#[test]
fn budgets_truncate_composed_streams() {
    let g = chained_cycles(&[6, 6]);
    let mut response = Query::enumerate()
        .budget(EnumerationBudget::results(17))
        .run_local(&g);
    assert_eq!(response.by_ref().count(), 17);
    let outcome = response.outcome();
    assert_eq!(outcome.produced, 17);
    assert!(!outcome.completed, "a truncated product is not complete");
}

#[test]
fn cancellation_stops_composed_streams() {
    let g = chained_cycles(&[7, 7]);
    let mut response = Query::enumerate().run_local(&g);
    let token = response.cancel_token();
    assert!(response.next().is_some());
    token.cancel();
    assert!(response.next().is_none());
    let outcome = response.outcome();
    assert!(outcome.cancelled && !outcome.completed);
}

#[test]
fn best_k_and_decompose_tasks_run_over_composed_streams() {
    let g = chained_cycles(&[5, 4]);
    let best = Query::best_k(3, CostMeasure::Fill)
        .run_local(&g)
        .triangulations();
    assert_eq!(best.len(), 3);
    // every minimal triangulation of C5+C4 fills (5-3) + (4-3) edges
    assert!(best.iter().all(|t| t.fill_count() == 3));
    let mut response = Query::decompose(TdEnumerationMode::OnePerClass).run_local(&g);
    let ds = response.decompositions();
    assert_eq!(ds.len(), 5 * 2);
    assert!(ds.iter().all(|d| d.is_proper(&g)));
    assert!(response.outcome().completed);
}

/// A random graph on `3..=max_n` nodes with independent edge bits —
/// frequently disconnected, pendant-heavy and clique-separable, which is
/// exactly the population planning rearranges.
fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..=max_n).prop_flat_map(|n| {
        let m = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), m).prop_map(move |bits| {
            let mut g = Graph::new(n);
            let mut k = 0;
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if bits[k] {
                        g.add_edge(u, v);
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline reduction contract: planned enumeration is
    /// set-identical (and therefore count-identical) to unreduced on
    /// arbitrary graphs, for the local executor.
    #[test]
    fn planned_enumeration_is_set_identical_to_unreduced(g in graph_strategy(8)) {
        prop_assert_eq!(planned_local(&g), unreduced_local(&g));
    }

    /// The same contract through the engine, at several thread counts.
    #[test]
    fn planned_engine_queries_are_set_identical_to_unreduced(g in graph_strategy(7)) {
        let reference = unreduced_local(&g);
        for threads in [1usize, 2] {
            let engine = Engine::new();
            let got = sorted_edges(
                engine
                    .run(&g, Query::enumerate().policy(ExecPolicy::fixed().with_threads(threads)))
                    .filter_map(QueryItem::into_triangulation)
                    .collect(),
            );
            prop_assert_eq!(&got, &reference, "thread count {}", threads);
        }
    }
}

//! Contracts of the typed `Query` → `Response` front door:
//!
//! * `Query::run_local` is the sequential enumerator, bit for bit — and
//!   `Engine::run` with `Delivery::Deterministic` reproduces it at every
//!   thread count, while `Delivery::Unordered` reproduces the answer
//!   *set* (the parity guarantees of `tests/engine_parallel.rs`, now
//!   exercised through the one serving entry point);
//! * every task — enumerate, best-k, decompose, stats — matches its
//!   pre-query reference implementation;
//! * warm sessions replay for *ranked and decompose* queries too, with
//!   zero `Extend` calls and `is_replay()` set;
//! * budgets and outcomes are reported identically across executors.

use mintri::core::MinimalTriangulationsEnumerator;
use mintri::prelude::*;
use mintri::workloads::random::erdos_renyi;

fn edges_of(tris: &[Triangulation]) -> Vec<Vec<(Node, Node)>> {
    tris.iter().map(|t| t.graph.edges()).collect()
}

#[test]
fn run_local_is_the_sequential_iterator_bit_for_bit() {
    for mode in [PrintMode::UponGeneration, PrintMode::UponPop] {
        let g = erdos_renyi(14, 0.3, 5);
        let via_query = edges_of(
            &Query::enumerate()
                .mode(mode)
                .budget(EnumerationBudget::results(300))
                .run_local(&g)
                .triangulations(),
        );
        let direct: Vec<_> = MinimalTriangulationsEnumerator::with_config(&g, Box::new(McsM), mode)
            .take(300)
            .map(|t| t.graph.edges())
            .collect();
        assert_eq!(via_query, direct, "mode {mode:?}");
    }
}

#[cfg(feature = "parallel")]
#[test]
fn deterministic_engine_queries_match_run_local_exactly() {
    let g = erdos_renyi(16, 0.3, 99);
    let reference = edges_of(&Query::enumerate().run_local(&g).triangulations());
    for threads in [2, 4] {
        let engine = Engine::new();
        let got: Vec<_> = engine
            .run(
                &g,
                Query::enumerate()
                    .threads(threads)
                    .delivery(Delivery::Deterministic),
            )
            .filter_map(QueryItem::into_triangulation)
            .map(|t| t.graph.edges())
            .collect();
        assert_eq!(got, reference, "{threads} threads");
    }
}

#[cfg(feature = "parallel")]
#[test]
fn unordered_engine_queries_match_the_answer_set() {
    let g = erdos_renyi(14, 0.3, 41);
    let mut reference = edges_of(&Query::enumerate().run_local(&g).triangulations());
    reference.sort();
    for threads in [2, 4] {
        let engine = Engine::new();
        let mut got: Vec<_> = engine
            .run(&g, Query::enumerate().threads(threads))
            .filter_map(QueryItem::into_triangulation)
            .map(|t| t.graph.edges())
            .collect();
        got.sort();
        assert_eq!(got, reference, "{threads} threads");
    }
}

#[test]
fn best_k_task_matches_the_selection_loop() {
    let g = erdos_renyi(12, 0.3, 3);
    let via_task = edges_of(
        &Query::best_k(5, CostMeasure::Fill)
            .run_local(&g)
            .triangulations(),
    );
    let via_loop = edges_of(&best_k_of_stream(
        MinimalTriangulationsEnumerator::new(&g),
        5,
        EnumerationBudget::unlimited(),
        |t| t.fill_count(),
    ));
    assert_eq!(via_task, via_loop);
}

#[test]
fn decompose_task_matches_proper_tree_decompositions() {
    let g = Graph::cycle(6);
    let via_task: Vec<_> = Query::decompose(TdEnumerationMode::AllDecompositions)
        .run_local(&g)
        .decompositions()
        .iter()
        .map(|d| (d.num_bags(), d.width()))
        .collect();
    let direct: Vec<_> = ProperTreeDecompositions::new(&g)
        .map(|d| (d.num_bags(), d.width()))
        .collect();
    assert_eq!(via_task, direct);
}

#[test]
fn stats_task_agrees_with_anytime_search() {
    let g = Graph::cycle(7);
    let outcome = Query::stats()
        .budget(EnumerationBudget::results(10))
        .run_local(&g)
        .wait();
    let anytime = AnytimeSearch::new(&g)
        .budget(EnumerationBudget::results(10))
        .run();
    assert_eq!(outcome.records.len(), anytime.records.len());
    assert_eq!(outcome.completed, anytime.completed);
    let (q1, q2) = (outcome.quality().unwrap(), anytime.quality().unwrap());
    assert_eq!(q1.min_width, q2.min_width);
    assert_eq!(q1.min_fill, q2.min_fill);
}

#[test]
fn ranked_and_decompose_engine_queries_replay_warm_sessions() {
    // The replay-bypass fix: a best-k query on a warm session must serve
    // from the completed-answer cache — zero Extend calls — and say so.
    let engine = Engine::new();
    let g = erdos_renyi(12, 0.25, 11);

    let mut cold = engine.run(&g, Query::best_k(2, CostMeasure::Width));
    assert!(!cold.is_replay());
    let cold_best = edges_of(&cold.triangulations());
    let extends = engine.session(&g).stats().extends;
    assert!(extends > 0);

    let mut warm = engine.run(&g, Query::best_k(2, CostMeasure::Width));
    assert!(
        warm.is_replay(),
        "ranked query must replay the warm session"
    );
    assert_eq!(edges_of(&warm.triangulations()), cold_best);
    assert!(warm.outcome().replayed);
    assert_eq!(
        engine.session(&g).stats().extends,
        extends,
        "replayed ranked query must not call Extend"
    );

    let warm_decompose = engine.run(&g, Query::decompose(TdEnumerationMode::OnePerClass));
    assert!(
        warm_decompose.is_replay(),
        "decompose query must replay the warm session"
    );
    assert!(warm_decompose.count() > 0);
    assert_eq!(engine.session(&g).stats().extends, extends);

    // …and the instrumented stats task replays too.
    let warm_stats = engine.run(&g, Query::stats());
    assert!(warm_stats.is_replay());
    let outcome = warm_stats.wait();
    assert!(outcome.replayed && outcome.completed);
    assert_eq!(engine.session(&g).stats().extends, extends);
}

#[test]
fn outcomes_agree_between_local_and_engine_execution() {
    let g = Graph::cycle(7);
    let local = Query::stats().run_local(&g).wait();
    let engine = Engine::with_config(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    let served = engine.run(&g, Query::stats()).wait();
    assert_eq!(local.scanned, served.scanned);
    assert_eq!(local.completed, served.completed);
    assert_eq!(
        local.enum_stats.expect("sequential stats"),
        served.enum_stats.expect("engine sequential stats"),
        "the engine's sequential path runs the identical schedule"
    );
}

#[test]
fn budget_is_honored_identically_across_executors() {
    let g = erdos_renyi(12, 0.3, 17);
    let engine = Engine::new();
    for k in [1usize, 4, 9] {
        let local = Query::enumerate()
            .budget(EnumerationBudget::results(k))
            .run_local(&g)
            .triangulations()
            .len();
        let served = engine
            .run(&g, Query::enumerate().budget(EnumerationBudget::results(k)))
            .count();
        assert!(local <= k);
        assert_eq!(local, served, "budget results({k})");
    }
}

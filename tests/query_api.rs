//! Contracts of the typed `Query` → `Response` front door:
//!
//! * `Query::run_local` is the sequential enumerator, bit for bit — and
//!   `Engine::run` with `Delivery::Deterministic` reproduces it at every
//!   thread count, while `Delivery::Unordered` reproduces the answer
//!   *set* (the parity guarantees of `tests/engine_parallel.rs`, now
//!   exercised through the one serving entry point);
//! * every task — enumerate, best-k, decompose, stats — matches its
//!   pre-query reference implementation;
//! * warm sessions replay for *ranked and decompose* queries too, with
//!   zero `Extend` calls and `is_replay()` set;
//! * budgets and outcomes are reported identically across executors.

use mintri::core::MinimalTriangulationsEnumerator;
use mintri::prelude::*;
use mintri::workloads::random::erdos_renyi;

fn edges_of(tris: &[Triangulation]) -> Vec<Vec<(Node, Node)>> {
    tris.iter().map(|t| t.graph.edges()).collect()
}

#[test]
fn unplanned_run_local_is_the_sequential_iterator_bit_for_bit() {
    // `--no-plan` contract: with planning off, `run_local` IS the
    // whole-graph sequential enumerator, bit for bit, in both modes.
    for mode in [PrintMode::UponGeneration, PrintMode::UponPop] {
        let g = erdos_renyi(14, 0.3, 5);
        let via_query = edges_of(
            &Query::enumerate()
                .policy(ExecPolicy::fixed().with_planned(false))
                .mode(mode)
                .budget(EnumerationBudget::results(300))
                .run_local(&g)
                .triangulations(),
        );
        let direct: Vec<_> = MinimalTriangulationsEnumerator::with_config(&g, Box::new(McsM), mode)
            .take(300)
            .map(|t| t.graph.edges())
            .collect();
        assert_eq!(via_query, direct, "mode {mode:?}");
    }
}

#[test]
fn planned_run_local_matches_the_unreduced_answer_set() {
    // Planning may reorder (the composed odometer order) but never
    // changes the answer set — here on a graph with several atoms: two
    // cycles and a pendant path glued on.
    let mut g = erdos_renyi(8, 0.35, 5);
    let base = g.num_nodes() as Node;
    let mut grow = |edges: &[(Node, Node)]| {
        let n = g.num_nodes() + edges.len();
        let mut bigger = Graph::new(n);
        for (u, v) in g.edges() {
            bigger.add_edge(u, v);
        }
        for &(u, v) in edges {
            bigger.add_edge(u, v);
        }
        g = bigger;
    };
    grow(&[
        (0, base),
        (base, base + 1),
        (base + 1, base + 2),
        (base + 2, 0),
        (base + 2, base + 3),
        (base + 3, base + 4),
    ]);
    let planned = {
        let mut v = edges_of(&Query::enumerate().run_local(&g).triangulations());
        v.sort();
        v
    };
    let unreduced = {
        let mut v = edges_of(
            &Query::enumerate()
                .policy(ExecPolicy::fixed().with_planned(false))
                .run_local(&g)
                .triangulations(),
        );
        v.sort();
        v
    };
    assert_eq!(planned, unreduced);
}

#[cfg(feature = "parallel")]
#[test]
fn deterministic_engine_queries_match_run_local_exactly() {
    let g = erdos_renyi(16, 0.3, 99);
    let reference = edges_of(&Query::enumerate().run_local(&g).triangulations());
    for threads in [2, 4] {
        let engine = Engine::new();
        let got: Vec<_> = engine
            .run(
                &g,
                Query::enumerate().policy(
                    ExecPolicy::fixed()
                        .with_threads(threads)
                        .with_delivery(Delivery::Deterministic),
                ),
            )
            .filter_map(QueryItem::into_triangulation)
            .map(|t| t.graph.edges())
            .collect();
        assert_eq!(got, reference, "{threads} threads");
    }
}

#[cfg(feature = "parallel")]
#[test]
fn unordered_engine_queries_match_the_answer_set() {
    let g = erdos_renyi(14, 0.3, 41);
    let mut reference = edges_of(&Query::enumerate().run_local(&g).triangulations());
    reference.sort();
    for threads in [2, 4] {
        let engine = Engine::new();
        let mut got: Vec<_> = engine
            .run(
                &g,
                Query::enumerate().policy(ExecPolicy::fixed().with_threads(threads)),
            )
            .filter_map(QueryItem::into_triangulation)
            .map(|t| t.graph.edges())
            .collect();
        got.sort();
        assert_eq!(got, reference, "{threads} threads");
    }
}

#[test]
fn best_k_task_matches_the_selection_loop() {
    let g = erdos_renyi(12, 0.3, 3);
    let via_task = edges_of(
        &Query::best_k(5, CostMeasure::Fill)
            .run_local(&g)
            .triangulations(),
    );
    let via_loop = edges_of(&best_k_of_stream(
        MinimalTriangulationsEnumerator::new(&g),
        5,
        EnumerationBudget::unlimited(),
        |t| t.fill_count(),
    ));
    assert_eq!(via_task, via_loop);
}

#[test]
fn decompose_task_matches_proper_tree_decompositions() {
    let g = Graph::cycle(6);
    let via_task: Vec<_> = Query::decompose(TdEnumerationMode::AllDecompositions)
        .run_local(&g)
        .decompositions()
        .iter()
        .map(|d| (d.num_bags(), d.width()))
        .collect();
    let direct: Vec<_> = ProperTreeDecompositions::new(&g)
        .map(|d| (d.num_bags(), d.width()))
        .collect();
    assert_eq!(via_task, direct);
}

#[test]
fn stats_task_agrees_with_anytime_search() {
    let g = Graph::cycle(7);
    let outcome = Query::stats()
        .budget(EnumerationBudget::results(10))
        .run_local(&g)
        .wait();
    let anytime = AnytimeSearch::new(&g)
        .budget(EnumerationBudget::results(10))
        .run();
    assert_eq!(outcome.records.len(), anytime.records.len());
    assert_eq!(outcome.completed, anytime.completed);
    let (q1, q2) = (outcome.quality().unwrap(), anytime.quality().unwrap());
    assert_eq!(q1.min_width, q2.min_width);
    assert_eq!(q1.min_fill, q2.min_fill);
}

#[test]
fn ranked_and_decompose_engine_queries_replay_warm_sessions() {
    // The replay-bypass fix: a best-k query on warm sessions must serve
    // from the completed-answer caches — zero Extend calls — and say so.
    // (`memo_stats` aggregates over all sessions, so this holds whether
    // the graph planned into several atom sessions or one whole-graph
    // session.)
    let engine = Engine::new();
    let g = erdos_renyi(12, 0.25, 11);

    let mut cold = engine.run(&g, Query::best_k(2, CostMeasure::Width));
    assert!(!cold.is_replay());
    let cold_best = edges_of(&cold.triangulations());
    let extends = engine.memo_stats().extends;
    assert!(extends > 0);

    let mut warm = engine.run(&g, Query::best_k(2, CostMeasure::Width));
    assert!(
        warm.is_replay(),
        "ranked query must replay the warm sessions"
    );
    assert_eq!(edges_of(&warm.triangulations()), cold_best);
    assert!(warm.outcome().replayed);
    assert_eq!(
        engine.memo_stats().extends,
        extends,
        "replayed ranked query must not call Extend"
    );

    let warm_decompose = engine.run(&g, Query::decompose(TdEnumerationMode::OnePerClass));
    assert!(
        warm_decompose.is_replay(),
        "decompose query must replay the warm sessions"
    );
    assert!(warm_decompose.count() > 0);
    assert_eq!(engine.memo_stats().extends, extends);

    // …and the instrumented stats task replays too.
    let warm_stats = engine.run(&g, Query::stats());
    assert!(warm_stats.is_replay());
    let outcome = warm_stats.wait();
    assert!(outcome.replayed && outcome.completed);
    assert_eq!(engine.memo_stats().extends, extends);
}

#[test]
fn atom_sessions_carry_warm_state_between_different_graphs() {
    // The cross-query sharing per-atom keying buys: two *different*
    // graphs containing the same atom. The second query replays the
    // shared atom's recorded answers — `is_replay()`/`outcome()`-level
    // evidence plus flat engine-wide Extend counters.
    let engine = Engine::new();
    let c6: &[(Node, Node)] = &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)];
    // g1: the C6 atom plus a pendant C4 glued at vertex 0
    let mut g1 = Graph::from_edges(9, c6);
    for &(u, v) in &[(0, 6), (6, 7), (7, 8), (8, 0)] {
        g1.add_edge(u, v);
    }
    // g2: the same C6 atom plus a pendant edge — a different graph
    let mut g2 = Graph::from_edges(7, c6);
    g2.add_edge(0, 6);

    let mut first = engine.run(&g1, Query::enumerate());
    assert!(!first.is_replay());
    assert_eq!(first.by_ref().count(), 14 * 2, "C6 × C4 product");
    assert!(first.outcome().completed);
    let extends_after_g1 = engine.memo_stats().extends;
    assert!(extends_after_g1 > 0);

    // g2's only non-trivial atom is the shared C6 ⇒ full replay.
    let mut second = engine.run(&g2, Query::enumerate());
    assert!(
        second.is_replay(),
        "a different graph sharing the atom must replay its warm session"
    );
    assert_eq!(second.by_ref().count(), 14);
    let outcome = second.outcome();
    assert!(outcome.replayed && outcome.completed);
    assert_eq!(
        engine.memo_stats().extends,
        extends_after_g1,
        "the shared atom served from cache: zero new Extend calls"
    );
}

#[test]
fn outcomes_agree_between_local_and_engine_execution() {
    let g = Graph::cycle(7);
    let local = Query::stats().run_local(&g).wait();
    let engine = Engine::with_config(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    let served = engine.run(&g, Query::stats()).wait();
    assert_eq!(local.scanned, served.scanned);
    assert_eq!(local.completed, served.completed);
    assert_eq!(
        local.enum_stats.expect("sequential stats"),
        served.enum_stats.expect("engine sequential stats"),
        "the engine's sequential path runs the identical schedule"
    );
}

#[test]
fn budget_is_honored_identically_across_executors() {
    let g = erdos_renyi(12, 0.3, 17);
    let engine = Engine::new();
    for k in [1usize, 4, 9] {
        let local = Query::enumerate()
            .budget(EnumerationBudget::results(k))
            .run_local(&g)
            .triangulations()
            .len();
        let served = engine
            .run(&g, Query::enumerate().budget(EnumerationBudget::results(k)))
            .count();
        assert!(local <= k);
        assert_eq!(local, served, "budget results({k})");
    }
}

//! # mintri — enumerating minimal triangulations and proper tree decompositions
//!
//! A Rust implementation of the PODS 2017 paper *"Efficiently Enumerating
//! Minimal Triangulations"* (Carmeli, Kenig, Kimelfeld, Kröll). The facade
//! crate re-exports the whole stack; most users only need [`prelude`].
//!
//! ```
//! use mintri::prelude::*;
//!
//! // The 4-cycle has exactly two minimal triangulations (the two diagonals).
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let results = Query::enumerate().run_local(&g).triangulations();
//! assert_eq!(results.len(), 2);
//! ```
//!
//! ## Choosing an enumeration API
//!
//! There is **one front door**: a typed [`prelude::Query`] describes
//! *what* to compute, and a [`prelude::Response`] describes *how it
//! went*. Everything else is either an execution choice behind that
//! door, or the low-level kernel beneath it.
//!
//! * **What to compute** is the query's [`prelude::Task`]:
//!   `Query::enumerate()` streams `MinTri(g)`;
//!   `Query::best_k(k, cost)` keeps the `k` best under a
//!   [`prelude::CostMeasure`]; `Query::decompose(mode)` streams proper
//!   tree decompositions (Section 5); `Query::stats()` runs the
//!   instrumented anytime scan of the paper's experiments. Budgets
//!   ([`prelude::EnumerationBudget`]), the triangulation backend
//!   ([`prelude::Triangulator`]), the print discipline
//!   ([`prelude::PrintMode`]), delivery contract and thread count are
//!   all builder parameters of the same query.
//! * **Where to run it** is a two-way choice:
//!   [`core::query::Query::run_local`] executes sequentially on the
//!   calling thread with zero setup (scripts, tests, one-shot calls);
//!   [`engine::Engine::run`] executes the *same query* against warm
//!   per-atom sessions — sharded memo tables shared across threads and
//!   queries, work-stealing parallel drivers
//!   ([`prelude::Delivery::Unordered`] streams fastest,
//!   [`prelude::Delivery::Deterministic`] reproduces the sequential
//!   order at any thread count), and completed-answer replay (repeat
//!   queries of *any* task shape serve with zero `Extend` calls).
//! * **How it went** is always the same [`prelude::Response`] handle: a
//!   blocking [`prelude::QueryItem`] stream plus `cancel()` (honored
//!   mid-stream; parallel workers are aborted and joined), `outcome()`
//!   (budget/quality records, `EnumMIS` counters, termination cause) and
//!   `is_replay()`.
//!
//! Before any of that, **both executors plan**: the graph is decomposed
//! into connected components and clique-minimal-separator atoms
//! ([`prelude::Plan`], over [`prelude::atom_decomposition`]); each
//! non-trivial atom enumerates on its own small subgraph and a product
//! composer ([`prelude::ComposedStream`]) recombines the per-atom
//! streams — minimal triangulations factor over atoms, so the answer
//! set is identical while the work drops from one exponential blob to a
//! sum of small enumerations. The engine keys its sessions per atom, so
//! different graphs sharing an atom share its warm cache. Opt out per
//! query with `Query::planned(false)` (CLI: `--no-plan`).
//!
//! The two execution paths agree exactly: `Deterministic` delivery
//! reproduces `run_local`'s output stream, and `Unordered` reproduces
//! the answer set (`tests/engine_parallel.rs`, `tests/query_api.rs` and
//! `tests/planning.rs` hold these contracts).
//!
//! Beneath the front door, the single-threaded iterator kernel remains
//! public for allocation-lean embedding:
//! [`prelude::MinimalTriangulationsEnumerator`],
//! [`prelude::ProperTreeDecompositions`] and the SGR machinery in
//! [`sgr`].

pub use mintri_chordal as chordal;
pub use mintri_core as core;
pub use mintri_engine as engine;
pub use mintri_graph as graph;
pub use mintri_separators as separators;
pub use mintri_serve as serve;
pub use mintri_sgr as sgr;
pub use mintri_telemetry as telemetry;
pub use mintri_treedecomp as treedecomp;
pub use mintri_triangulate as triangulate;
pub use mintri_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use mintri_chordal::{is_chordal, maximal_cliques, treewidth_of_chordal, CliqueForest};
    pub use mintri_core::best_k_of_stream;
    pub use mintri_core::{
        AnytimeSearch, AtomDispatch, BruteForce, CancelToken, ComposedStream, CostMeasure,
        Delivery, DispatchKind, EagerMinimalTriangulations, EnumerationBudget, ExecPolicy,
        MinimalTriangulationsEnumerator, Plan, PlannedAtom, ProperTreeDecompositions, Query,
        QueryItem, QueryOutcome, Response, SearchStrategy, Task, TdEnumerationMode,
        TriangulationStream,
    };
    #[cfg(feature = "parallel")]
    pub use mintri_engine::{parallel_strategy, parallel_strategy_with, ParallelEnumerator};
    pub use mintri_engine::{Engine, EngineConfig, GraphSession};
    pub use mintri_graph::{Graph, Node, NodeSet};
    pub use mintri_separators::{
        atom_decomposition, crossing, AtomDecomposition, MinimalSeparatorIter,
    };
    pub use mintri_sgr::{EnumMis, EnumMisStats, Frontier, PrintMode, Sgr};
    pub use mintri_treedecomp::{exact_treewidth, TreeDecomposition};
    pub use mintri_triangulate::{
        is_minimal_triangulation, EliminationOrder, LbTriang, LexM, McsM, Triangulation,
        Triangulator,
    };
}

//! # mintri — enumerating minimal triangulations and proper tree decompositions
//!
//! A Rust implementation of the PODS 2017 paper *"Efficiently Enumerating
//! Minimal Triangulations"* (Carmeli, Kenig, Kimelfeld, Kröll). The facade
//! crate re-exports the whole stack; most users only need [`prelude`].
//!
//! ```
//! use mintri::prelude::*;
//!
//! // The 4-cycle has exactly two minimal triangulations (the two diagonals).
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let results: Vec<_> = MinimalTriangulationsEnumerator::new(&g).collect();
//! assert_eq!(results.len(), 2);
//! ```

pub use mintri_chordal as chordal;
pub use mintri_core as core;
pub use mintri_graph as graph;
pub use mintri_separators as separators;
pub use mintri_sgr as sgr;
pub use mintri_treedecomp as treedecomp;
pub use mintri_triangulate as triangulate;
pub use mintri_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use mintri_chordal::{is_chordal, maximal_cliques, treewidth_of_chordal, CliqueForest};
    pub use mintri_core::{
        best_fill, best_k_by, best_width, AnytimeSearch, BruteForce, EagerMinimalTriangulations,
        EnumerationBudget, MinimalTriangulationsEnumerator, ProperTreeDecompositions,
        TdEnumerationMode,
    };
    pub use mintri_graph::{Graph, Node, NodeSet};
    pub use mintri_separators::{crossing, MinimalSeparatorIter};
    pub use mintri_sgr::{EnumMis, PrintMode, Sgr};
    pub use mintri_treedecomp::{exact_treewidth, TreeDecomposition};
    pub use mintri_triangulate::{
        is_minimal_triangulation, EliminationOrder, LbTriang, LexM, McsM, Triangulation,
        Triangulator,
    };
}

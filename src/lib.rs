//! # mintri — enumerating minimal triangulations and proper tree decompositions
//!
//! A Rust implementation of the PODS 2017 paper *"Efficiently Enumerating
//! Minimal Triangulations"* (Carmeli, Kenig, Kimelfeld, Kröll). The facade
//! crate re-exports the whole stack; most users only need [`prelude`].
//!
//! ```
//! use mintri::prelude::*;
//!
//! // The 4-cycle has exactly two minimal triangulations (the two diagonals).
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let results: Vec<_> = MinimalTriangulationsEnumerator::new(&g).collect();
//! assert_eq!(results.len(), 2);
//! ```
//!
//! ## Choosing an enumeration API
//!
//! Two front doors cover every workload:
//!
//! * **The iterator stack** ([`core`]) — single-threaded, borrow-based,
//!   zero setup: [`prelude::MinimalTriangulationsEnumerator`] streams
//!   `MinTri(g)` in incremental polynomial time;
//!   [`prelude::ProperTreeDecompositions`] does the same for proper tree
//!   decompositions; [`prelude::AnytimeSearch`] adds budgets and quality
//!   recording. Reach for these in scripts, tests and one-shot calls.
//! * **The engine** ([`engine`]) — the serving layer. An
//!   [`prelude::Engine`] keeps a warm session per graph (sharded
//!   separator-interner and crossing memos shared across threads *and*
//!   across queries, completed answer lists replayed for free), and
//!   [`prelude::ParallelEnumerator`] fans the `EnumMIS` frontier over a
//!   work-stealing thread pool with a choice of
//!   [`prelude::Delivery::Unordered`] (fastest) or
//!   [`prelude::Delivery::Deterministic`] (bit-identical to the
//!   sequential order). Reach for these in services and on big inputs.
//!
//! The two agree exactly: the engine's `Deterministic` mode reproduces
//! the iterator stack's output stream, and `Unordered` reproduces the
//! answer set (`tests/engine_parallel.rs` holds both contracts).

pub use mintri_chordal as chordal;
pub use mintri_core as core;
pub use mintri_engine as engine;
pub use mintri_graph as graph;
pub use mintri_separators as separators;
pub use mintri_sgr as sgr;
pub use mintri_treedecomp as treedecomp;
pub use mintri_triangulate as triangulate;
pub use mintri_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use mintri_chordal::{is_chordal, maximal_cliques, treewidth_of_chordal, CliqueForest};
    pub use mintri_core::{
        best_fill, best_k_by, best_width, AnytimeSearch, BruteForce, EagerMinimalTriangulations,
        EnumerationBudget, MinimalTriangulationsEnumerator, ProperTreeDecompositions,
        SearchStrategy, TdEnumerationMode,
    };
    #[cfg(feature = "parallel")]
    pub use mintri_engine::{parallel_strategy, parallel_strategy_with, ParallelEnumerator};
    pub use mintri_engine::{Delivery, Engine, EngineConfig, EngineEnumeration, GraphSession};
    pub use mintri_graph::{Graph, Node, NodeSet};
    pub use mintri_separators::{crossing, MinimalSeparatorIter};
    pub use mintri_sgr::{EnumMis, EnumMisStats, Frontier, PrintMode, Sgr};
    pub use mintri_treedecomp::{exact_treewidth, TreeDecomposition};
    pub use mintri_triangulate::{
        is_minimal_triangulation, EliminationOrder, LbTriang, LexM, McsM, Triangulation,
        Triangulator,
    };
}

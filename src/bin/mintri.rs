//! The `mintri` command-line tool: enumerate minimal triangulations and
//! proper tree decompositions of graphs from files.
//!
//! ```text
//! mintri stats        --input g.col [--format dimacs|edges|uai]
//! mintri triangulate  --input g.col [--algo mcsm|lbtriang|lexm|mindegree]
//! mintri enumerate    --input g.col [--limit K] [--budget-ms T] [--algo ...]
//!                     [--threads N] [--delivery unordered|deterministic]
//! mintri best-k       --input g.col [--k K] [--by width|fill] [--limit K]
//!                     [--budget-ms T] [--threads N] [--delivery ...]
//! mintri decompose    --input g.col [--limit K] [--one-per-class true]
//!                     [--threads N] [--delivery ...]
//! ```
//!
//! `--threads N` (N > 1, or 0 for "all cores") runs the enumeration on
//! the `mintri-engine` work-stealing pool — for `enumerate`, `best-k`
//! and `decompose` alike; `--delivery deterministic` makes the parallel
//! output order match the single-threaded one.
//!
//! Graphs: DIMACS `.col` (default), 0-based edge lists, or UAI network
//! files. Output goes to stdout; diagnostics to stderr.

use mintri::core::{AnytimeSearch, EnumerationBudget, ProperTreeDecompositions, SearchStrategy};
#[cfg(feature = "parallel")]
use mintri::engine::parallel_strategy_with;
use mintri::engine::{Delivery, Engine, EngineConfig};
use mintri::graph::io::{parse_dimacs, parse_edge_list};
use mintri::prelude::*;
use mintri::separators::MinimalSeparatorIter;
use mintri::triangulate::{minimal_triangulation, EliminationOrder, LexM};
use mintri::workloads::parse_uai;
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("usage: mintri <stats|triangulate|enumerate|decompose> --input FILE [flags]");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&command, &flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_flags(args: impl Iterator<Item = String>) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut iter = args.peekable();
    while let Some(arg) = iter.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {arg:?}"))?;
        let value = iter
            .next()
            .ok_or_else(|| format!("missing value for --{key}"))?;
        flags.insert(key.to_string(), value);
    }
    Ok(flags)
}

fn load_graph(flags: &HashMap<String, String>) -> Result<Graph, String> {
    let path = flags
        .get("input")
        .ok_or_else(|| "--input FILE is required".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let format = flags.get("format").map(String::as_str).unwrap_or_else(|| {
        if path.ends_with(".uai") {
            "uai"
        } else if path.ends_with(".edges") || path.ends_with(".txt") {
            "edges"
        } else {
            "dimacs"
        }
    });
    match format {
        "dimacs" => parse_dimacs(&text).map_err(|e| e.to_string()),
        "edges" => parse_edge_list(&text).map_err(|e| e.to_string()),
        "uai" => parse_uai(&text),
        other => Err(format!("unknown --format {other:?}")),
    }
}

fn pick_triangulator(flags: &HashMap<String, String>) -> Result<Box<dyn Triangulator>, String> {
    Ok(
        match flags.get("algo").map(String::as_str).unwrap_or("mcsm") {
            "mcsm" => Box::new(McsM),
            "lbtriang" => Box::new(LbTriang::min_fill()),
            "lexm" => Box::new(LexM),
            "mindegree" => Box::new(EliminationOrder::min_degree()),
            other => return Err(format!("unknown --algo {other:?}")),
        },
    )
}

fn pick_delivery(flags: &HashMap<String, String>) -> Result<Delivery, String> {
    match flags.get("delivery").map(String::as_str) {
        None | Some("unordered") => Ok(Delivery::Unordered),
        Some("deterministic") => Ok(Delivery::Deterministic),
        Some(other) => Err(format!(
            "unknown --delivery {other:?} (use unordered or deterministic)"
        )),
    }
}

/// `--threads` / `--delivery` → an [`EngineConfig`] for the engine-backed
/// paths, or `None` for the classic sequential iterators (`--threads 1`
/// and no flag both mean sequential).
fn pick_engine_config(flags: &HashMap<String, String>) -> Result<Option<EngineConfig>, String> {
    let threads: Option<usize> = flags
        .get("threads")
        .map(|s| s.parse().map_err(|_| "--threads must be an integer"))
        .transpose()?;
    let delivery = pick_delivery(flags)?;
    match threads {
        None | Some(1) => {
            let _ = delivery;
            Ok(None)
        }
        #[cfg(feature = "parallel")]
        Some(n) => Ok(Some(EngineConfig {
            threads: n,
            delivery,
            ..EngineConfig::default()
        })),
        #[cfg(not(feature = "parallel"))]
        Some(_) => {
            Err("--threads needs the `parallel` feature; rebuild with default features".to_string())
        }
    }
}

/// `--threads` / `--delivery` → a sequential or engine-backed strategy.
fn pick_strategy(flags: &HashMap<String, String>) -> Result<SearchStrategy, String> {
    match pick_engine_config(flags)? {
        None => Ok(SearchStrategy::Sequential),
        #[cfg(feature = "parallel")]
        Some(config) => Ok(parallel_strategy_with(config)),
        #[cfg(not(feature = "parallel"))]
        Some(_) => unreachable!("pick_engine_config never returns Some without `parallel`"),
    }
}

fn run(command: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    let g = load_graph(flags)?;
    let limit: usize = flags
        .get("limit")
        .map(|s| s.parse().map_err(|_| "--limit must be an integer"))
        .transpose()?
        .unwrap_or(usize::MAX);
    let budget_ms: Option<u64> = flags
        .get("budget-ms")
        .map(|s| s.parse().map_err(|_| "--budget-ms must be an integer"))
        .transpose()?;

    match command {
        "stats" => {
            println!("nodes: {}", g.num_nodes());
            println!("edges: {}", g.num_edges());
            println!("chordal: {}", is_chordal(&g));
            let cap = 10_000;
            let seps: Vec<_> = MinimalSeparatorIter::new(&g).take(cap).collect();
            let more = if seps.len() == cap { "+" } else { "" };
            println!("minimal separators: {}{}", seps.len(), more);
            if is_chordal(&g) {
                println!("treewidth: {}", treewidth_of_chordal(&g));
            } else {
                let t = minimal_triangulation(&g, &McsM);
                println!("mcs-m width (treewidth upper bound): {}", t.width());
                println!("mcs-m fill: {}", t.fill_count());
            }
        }
        "triangulate" => {
            let t = pick_triangulator(flags)?;
            let tri = minimal_triangulation(&g, t.as_ref());
            println!("c minimal triangulation by {}", t.name());
            println!("c width {} fill {}", tri.width(), tri.fill_count());
            for (u, v) in tri.fill {
                println!("f {} {}", u + 1, v + 1);
            }
        }
        "enumerate" => {
            let t = pick_triangulator(flags)?;
            let budget = EnumerationBudget {
                max_results: (limit != usize::MAX).then_some(limit),
                time_limit: budget_ms.map(Duration::from_millis),
            };
            let strategy = pick_strategy(flags)?;
            let outcome = AnytimeSearch::new(&g)
                .triangulator(t)
                .budget(budget)
                .strategy(strategy)
                .run();
            println!("index,elapsed_us,width,fill");
            for r in &outcome.records {
                println!("{},{},{},{}", r.index, r.at.as_micros(), r.width, r.fill);
            }
            eprintln!(
                "{} minimal triangulations{} in {:.1} ms",
                outcome.records.len(),
                if outcome.completed { " (complete)" } else { "" },
                outcome.elapsed.as_secs_f64() * 1e3
            );
        }
        "best-k" => {
            let k: usize = flags
                .get("k")
                .map(|s| s.parse().map_err(|_| "--k must be an integer"))
                .transpose()?
                .unwrap_or(1);
            let budget = EnumerationBudget {
                max_results: (limit != usize::MAX).then_some(limit),
                time_limit: budget_ms.map(Duration::from_millis),
            };
            let by = flags.get("by").map(String::as_str).unwrap_or("width");
            let cost: fn(&Triangulation) -> usize = match by {
                "width" => |t| t.width(),
                "fill" => |t| t.fill_count(),
                other => return Err(format!("unknown --by {other:?} (use width or fill)")),
            };
            let best = match pick_engine_config(flags)? {
                // The engine path: warm shared memo + the configured
                // parallel delivery behind the same selection loop.
                Some(config) => Engine::with_config(config).best_k_by(&g, k, budget, cost),
                None => best_k_by(&g, k, budget, cost),
            };
            println!("rank,width,fill");
            for (i, t) in best.iter().enumerate() {
                println!("{},{},{}", i, t.width(), t.fill_count());
            }
            eprintln!("{} best-{by} triangulations of {k} requested", best.len());
        }
        "decompose" => {
            let one_per_class = flags
                .get("one-per-class")
                .map(|s| s == "true" || s == "1")
                .unwrap_or(false);
            let iter: Box<dyn Iterator<Item = TreeDecomposition>> = match pick_engine_config(flags)?
            {
                Some(config) => {
                    let mode = if one_per_class {
                        TdEnumerationMode::OnePerClass
                    } else {
                        TdEnumerationMode::AllDecompositions
                    };
                    Box::new(Engine::with_config(config).decompose(&g, mode))
                }
                None if one_per_class => Box::new(ProperTreeDecompositions::one_per_class(&g)),
                None => Box::new(ProperTreeDecompositions::new(&g)),
            };
            let mut count = 0usize;
            for (i, d) in iter.take(limit).enumerate() {
                println!("d {} width {} bags {}", i, d.width(), d.num_bags());
                for bag in &d.bags {
                    let items: Vec<String> = bag.iter().map(|v| (v + 1).to_string()).collect();
                    println!("b {}", items.join(" "));
                }
                for (a, b) in &d.edges {
                    println!("t {} {}", a, b);
                }
                count += 1;
            }
            eprintln!("{count} proper tree decompositions printed");
        }
        other => {
            return Err(format!(
                "unknown command {other:?} (use stats, triangulate, enumerate, best-k or decompose)"
            ))
        }
    }
    Ok(())
}

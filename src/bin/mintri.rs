//! The `mintri` command-line tool: enumerate minimal triangulations and
//! proper tree decompositions of graphs from files.
//!
//! ```text
//! mintri stats        --input g.col [--input-format dimacs|edges|uai] [--format text|json]
//! mintri atoms        --input g.col [--format text|json]
//! mintri triangulate  --input g.col [--algo mcsm|lbtriang|lexm|mindegree] [--format ...]
//! mintri enumerate    --input g.col [--limit K] [--budget-ms T] [--algo ...]
//!                     [--policy auto|fixed] [--explain] [--threads N]
//!                     [--delivery unordered|deterministic] [--store-dir DIR]
//!                     [--format ...]
//! mintri best-k       --input g.col [--k K] [--by width|fill] [--limit K]
//!                     [--policy auto|fixed] [--explain] [--budget-ms T]
//!                     [--threads N] [--delivery ...] [--format ...]
//! mintri decompose    --input g.col [--limit K] [--one-per-class true]
//!                     [--policy auto|fixed] [--explain] [--threads N]
//!                     [--delivery ...] [--format ...]
//! mintri serve        [--addr HOST:PORT] [--threads N] [--max-sessions M]
//!                     [--workers W] [--slow-query-ms T] [--store-dir DIR]
//!                     [--store-budget-mb MB]
//! ```
//!
//! Every enumeration command also takes `--trace`: the query carries a
//! span tree (plan decomposition, per-atom dispatch and timings, first
//! result, drain) back in its outcome — printed human-readable to
//! stderr in text mode, embedded as `outcome.trace` in `--format json`.
//!
//! Every enumeration command builds one typed [`Query`] (task + backend +
//! budget + delivery + threads) and renders its [`Response`] — `--format
//! json` emits the results *and* the outcome (budget, quality, replay,
//! `EnumMIS` counters) as one JSON document on stdout. `--threads N`
//! (N > 1, or 0 for "all cores") executes the query on a `mintri-engine`
//! work-stealing pool; `--delivery deterministic` makes the parallel
//! output order match the single-threaded one.
//!
//! `mintri atoms` prints the clique-minimal-separator decomposition the
//! planning layer enumerates over (components, atoms, separators).
//!
//! Execution is governed by `--policy`: `auto` (the default) lets the
//! engine's learned per-atom cost profiles choose the schedule —
//! thread split, cursor order, parallel-vs-sequential — while `fixed`
//! pins the classic knobs. `--explain` prints the dispatch the engine
//! actually chose for each atom (replay/hydrate/parallel/sequential/
//! ranked plus the thread grant) to stderr; in `--format json` the
//! same record rides in `outcome.dispatch`. The old switches remain as
//! deprecated aliases for `--policy fixed`: `--no-plan` forces the
//! unreduced whole-graph path, `--no-ranked` forces best-k onto the
//! exhaustive scan-everything path (same winners, same order — the
//! ranked gear is an optimization, not a semantic change).
//!
//! Graphs: DIMACS `.col` (default), 0-based edge lists, or UAI network
//! files — select explicitly with `--input-format`. (For compatibility,
//! `--format dimacs|edges|uai` is still accepted as an input format;
//! otherwise `--format` selects the *output* format, `text` or `json`.)
//! Text output goes to stdout; diagnostics to stderr.
//!
//! `mintri serve` boots the HTTP/batch transport (`mintri-serve`) over
//! one shared engine: every remote query hits the same warm sessions
//! and replay caches the library calls do. All JSON — CLI output and
//! the wire — is rendered *and parsed* by `mintri_core::json`, so the
//! documents round-trip.
//!
//! `--store-dir DIR` attaches the persistent warm-state tier
//! (`mintri-store`): completed answer caches, memoized plans and (under
//! `serve`) the graph registry are snapshotted to disk and hydrated
//! back on the next run, so warm state survives restarts and can be
//! shared between replicas pointed at one directory. On an enumeration
//! command it forces the engine path even at `--threads 1` — a
//! one-shot CLI run both benefits from and contributes to the shared
//! tier. `--store-budget-mb` caps the directory; past it new snapshots
//! are skipped (never an error: the tier is a cache).

use mintri::core::json::{graph_summary_json, response_document, JsonObject};
use mintri::core::EnumerationBudget;
use mintri::engine::{Delivery, Engine, EngineConfig, ExecPolicy, Store, StoreConfig};
use mintri::graph::io::{parse_dimacs, parse_edge_list};
use mintri::prelude::*;
use mintri::separators::MinimalSeparatorIter;
use mintri::serve::api::ApiLimits;
use mintri::serve::{ServeConfig, Server};
use mintri::triangulate::{minimal_triangulation, EliminationOrder, LexM};
use mintri::workloads::parse_uai;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!(
            "usage: mintri <stats|atoms|triangulate|enumerate|best-k|decompose> --input FILE [flags]\n       mintri serve [--addr HOST:PORT] [--threads N] [--max-sessions M] [--workers W]"
        );
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&command, &flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Flags that take no value (present means `true`).
const SWITCH_FLAGS: &[&str] = &["no-plan", "no-ranked", "trace", "explain"];

fn parse_flags(args: impl Iterator<Item = String>) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut iter = args.peekable();
    while let Some(arg) = iter.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {arg:?}"))?;
        let value = if SWITCH_FLAGS.contains(&key) {
            "true".to_string()
        } else {
            iter.next()
                .ok_or_else(|| format!("missing value for --{key}"))?
        };
        flags.insert(key.to_string(), value);
    }
    Ok(flags)
}

/// Output rendering selected by `--format` (`text` by default).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Output {
    Text,
    Json,
}

/// The `--format` flag historically selected the *input* file format;
/// those values still route there, everything else is an output format.
fn pick_output(flags: &HashMap<String, String>) -> Result<Output, String> {
    match flags.get("format").map(String::as_str) {
        None | Some("text") | Some("dimacs") | Some("edges") | Some("uai") => Ok(Output::Text),
        Some("json") => Ok(Output::Json),
        Some(other) => Err(format!(
            "unknown --format {other:?} (use text or json; dimacs|edges|uai select the input format)"
        )),
    }
}

fn load_graph(flags: &HashMap<String, String>) -> Result<Graph, String> {
    let path = flags
        .get("input")
        .ok_or_else(|| "--input FILE is required".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let legacy = flags
        .get("format")
        .map(String::as_str)
        .filter(|f| matches!(*f, "dimacs" | "edges" | "uai"));
    let format = flags
        .get("input-format")
        .map(String::as_str)
        .or(legacy)
        .unwrap_or_else(|| {
            if path.ends_with(".uai") {
                "uai"
            } else if path.ends_with(".edges") || path.ends_with(".txt") {
                "edges"
            } else {
                "dimacs"
            }
        });
    match format {
        "dimacs" => parse_dimacs(&text).map_err(|e| e.to_string()),
        "edges" => parse_edge_list(&text).map_err(|e| e.to_string()),
        "uai" => parse_uai(&text),
        other => Err(format!("unknown --input-format {other:?}")),
    }
}

fn pick_triangulator(flags: &HashMap<String, String>) -> Result<Box<dyn Triangulator>, String> {
    Ok(
        match flags.get("algo").map(String::as_str).unwrap_or("mcsm") {
            "mcsm" => Box::new(McsM),
            "lbtriang" => Box::new(LbTriang::min_fill()),
            "lexm" => Box::new(LexM),
            "mindegree" => Box::new(EliminationOrder::min_degree()),
            other => return Err(format!("unknown --algo {other:?}")),
        },
    )
}

fn pick_delivery(flags: &HashMap<String, String>) -> Result<Delivery, String> {
    match flags.get("delivery").map(String::as_str) {
        None | Some("unordered") => Ok(Delivery::Unordered),
        Some("deterministic") => Ok(Delivery::Deterministic),
        Some(other) => Err(format!(
            "unknown --delivery {other:?} (use unordered or deterministic)"
        )),
    }
}

/// `--threads` → an [`EngineConfig`] for engine-backed execution, or
/// `None` for the zero-setup local path (`--threads 1` and no flag both
/// mean sequential).
fn pick_engine_config(flags: &HashMap<String, String>) -> Result<Option<EngineConfig>, String> {
    let threads: Option<usize> = flags
        .get("threads")
        .map(|s| s.parse().map_err(|_| "--threads must be an integer"))
        .transpose()?;
    let delivery = pick_delivery(flags)?;
    match threads {
        None | Some(1) => Ok(None),
        #[cfg(feature = "parallel")]
        Some(n) => Ok(Some(EngineConfig {
            threads: n,
            delivery,
            ..EngineConfig::default()
        })),
        #[cfg(not(feature = "parallel"))]
        Some(_) => {
            let _ = delivery;
            Err("--threads needs the `parallel` feature; rebuild with default features".to_string())
        }
    }
}

fn parse_budget(flags: &HashMap<String, String>) -> Result<EnumerationBudget, String> {
    let limit: Option<usize> = flags
        .get("limit")
        .map(|s| s.parse().map_err(|_| "--limit must be an integer"))
        .transpose()?;
    let budget_ms: Option<u64> = flags
        .get("budget-ms")
        .map(|s| s.parse().map_err(|_| "--budget-ms must be an integer"))
        .transpose()?;
    Ok(EnumerationBudget {
        max_results: limit,
        time_limit: budget_ms.map(Duration::from_millis),
    })
}

/// `--policy auto|fixed` (plus the deprecated `--no-plan`/`--no-ranked`
/// aliases) → the query's [`ExecPolicy`]. `auto` is the default: the
/// engine's learned cost profiles drive the schedule. The legacy
/// switches still work — they select a `fixed` policy with a
/// deprecation note — but cannot be combined with an explicit
/// `--policy auto`, which they would contradict.
fn pick_policy(flags: &HashMap<String, String>) -> Result<ExecPolicy, String> {
    let delivery = pick_delivery(flags)?;
    let legacy: Vec<&str> = ["no-plan", "no-ranked"]
        .into_iter()
        .filter(|k| flags.contains_key(*k))
        .collect();
    match flags.get("policy").map(String::as_str) {
        None | Some("auto") if legacy.is_empty() => Ok(ExecPolicy::auto().with_delivery(delivery)),
        Some("auto") => Err(format!(
            "--{} pins a fixed schedule and contradicts --policy auto; drop it or use --policy fixed",
            legacy[0]
        )),
        None | Some("fixed") => {
            if flags.get("policy").is_none() {
                eprintln!(
                    "warning: --{} is a deprecated alias for --policy fixed",
                    legacy.join(" and --")
                );
            }
            Ok(ExecPolicy::fixed()
                .with_planned(!flags.contains_key("no-plan"))
                .with_ranked(!flags.contains_key("no-ranked"))
                .with_delivery(delivery))
        }
        Some(other) => Err(format!("unknown --policy {other:?} (use auto or fixed)")),
    }
}

/// Builds the typed query for one enumeration command — the single place
/// where CLI flags become a request.
fn build_query(command: &str, flags: &HashMap<String, String>) -> Result<Query, String> {
    let query = match command {
        // The enumerate command's output is the per-result record CSV
        // (index, elapsed, width, fill) — the instrumented scan.
        "enumerate" => Query::stats(),
        "best-k" => {
            let k: usize = flags
                .get("k")
                .map(|s| s.parse().map_err(|_| "--k must be an integer"))
                .transpose()?
                .unwrap_or(1);
            let cost = match flags.get("by").map(String::as_str).unwrap_or("width") {
                "width" => CostMeasure::Width,
                "fill" => CostMeasure::Fill,
                other => return Err(format!("unknown --by {other:?} (use width or fill)")),
            };
            Query::best_k(k, cost)
        }
        "decompose" => {
            let one_per_class = flags
                .get("one-per-class")
                .map(|s| s == "true" || s == "1")
                .unwrap_or(false);
            Query::decompose(if one_per_class {
                TdEnumerationMode::OnePerClass
            } else {
                TdEnumerationMode::AllDecompositions
            })
        }
        other => return Err(format!("not an enumeration command: {other:?}")),
    };
    Ok(query
        .triangulator(pick_triangulator(flags)?)
        .budget(parse_budget(flags)?)
        .policy(pick_policy(flags)?)
        .traced(flags.contains_key("trace")))
}

/// `--trace` text rendering: the span tree goes to stderr (stdout stays
/// machine-readable). JSON output needs nothing here — the trace rides
/// inside the outcome document.
fn print_trace(outcome: &mintri::core::query::QueryOutcome, output: Output) {
    if output == Output::Text {
        if let Some(trace) = &outcome.trace {
            eprint!("{}", trace.render_text());
        }
    }
}

/// `--explain` text rendering: the per-atom dispatch record — how the
/// engine actually served each atom (replay/hydrate/parallel/sequential/
/// ranked) and the thread grant — to stderr. JSON output carries the
/// same data as `outcome.dispatch`.
fn print_explain(
    outcome: &mintri::core::query::QueryOutcome,
    flags: &HashMap<String, String>,
    output: Output,
) {
    if output != Output::Text || !flags.contains_key("explain") {
        return;
    }
    if outcome.dispatch.is_empty() {
        eprintln!("dispatch: local (no engine)");
        return;
    }
    for d in &outcome.dispatch {
        eprintln!(
            "atom {}: {} nodes, {} thread{}, {}",
            d.index,
            d.nodes,
            d.threads,
            if d.threads == 1 { "" } else { "s" },
            d.kind.name()
        );
    }
}

/// `--store-dir` / `--store-budget-mb` → the persistent warm-state
/// tier, or `None` to run RAM-only.
fn pick_store(flags: &HashMap<String, String>) -> Result<Option<Arc<Store>>, String> {
    let Some(dir) = flags.get("store-dir") else {
        return Ok(None);
    };
    let budget_mb: Option<u64> = flags
        .get("store-budget-mb")
        .map(|s| {
            s.parse()
                .map_err(|_| "--store-budget-mb must be an integer")
        })
        .transpose()?;
    let config = StoreConfig {
        max_disk_bytes: budget_mb.map(|mb| mb.saturating_mul(1024 * 1024)),
        ..StoreConfig::at(dir)
    };
    let store = Store::open(config).map_err(|e| format!("cannot open --store-dir {dir}: {e}"))?;
    Ok(Some(Arc::new(store)))
}

/// Executes a query: through an [`Engine`] when `--threads` asks for
/// parallelism or `--store-dir` attaches the disk tier, otherwise on
/// the calling thread with zero setup.
fn execute<'g>(
    query: Query,
    g: &'g Graph,
    flags: &HashMap<String, String>,
) -> Result<Response<'g>, String> {
    let store = pick_store(flags)?;
    Ok(match (pick_engine_config(flags)?, store) {
        (Some(config), Some(store)) => Engine::with_store(config, store).run(g, query),
        (Some(config), None) => Engine::with_config(config).run(g, query),
        // The store only pays off through the engine's session +
        // replay machinery, so its presence forces the engine path
        // even for a sequential run.
        (None, Some(store)) => Engine::with_store(
            EngineConfig {
                threads: 1,
                ..EngineConfig::default()
            },
            store,
        )
        .run(g, query),
        (None, None) => query.run_local(g),
    })
}

fn run(command: &str, flags: &HashMap<String, String>) -> Result<(), String> {
    if command == "serve" {
        return cmd_serve(flags);
    }
    let g = load_graph(flags)?;
    let output = pick_output(flags)?;

    match command {
        "stats" => cmd_stats(&g, output),
        "atoms" => cmd_atoms(&g, output),
        "triangulate" => cmd_triangulate(&g, flags, output),
        "enumerate" => cmd_enumerate(&g, flags, output),
        "best-k" => cmd_best_k(&g, flags, output),
        "decompose" => cmd_decompose(&g, flags, output),
        other => Err(format!(
            "unknown command {other:?} (use stats, atoms, triangulate, enumerate, best-k, decompose or serve)"
        )),
    }
}

/// `mintri serve`: the HTTP/batch transport over one shared [`Engine`].
/// `--threads` configures the engine's worker pool (per-query
/// parallelism), `--workers` the connection workers, `--max-sessions`
/// the warm-session LRU cap, `--slow-query-ms` the threshold for the
/// slow-query log surfaced under `/v1/stats`, and `--store-dir` (with
/// an optional `--store-budget-mb` cap) the persistent warm-state tier
/// replay caches and the graph registry survive restarts in.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let parse_usize = |key: &str, default: usize| -> Result<usize, String> {
        flags
            .get(key)
            .map(|s| s.parse().map_err(|_| format!("--{key} must be an integer")))
            .unwrap_or(Ok(default))
    };
    let mut engine_config = EngineConfig {
        max_sessions: parse_usize("max-sessions", EngineConfig::default().max_sessions)?,
        ..EngineConfig::default()
    };
    engine_config.threads = parse_usize("threads", engine_config.threads)?;
    let api = ApiLimits {
        slow_query_ms: parse_usize("slow-query-ms", ApiLimits::default().slow_query_ms as usize)?
            as u64,
        ..ApiLimits::default()
    };
    let config = ServeConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| ServeConfig::default().addr),
        workers: parse_usize("workers", ServeConfig::default().workers)?,
        api,
        ..ServeConfig::default()
    };
    let engine = Arc::new(match pick_store(flags)? {
        Some(store) => Engine::with_store(engine_config, store),
        None => Engine::with_config(engine_config),
    });
    let server = Server::bind(config, engine).map_err(|e| format!("cannot bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    eprintln!("mintri-serve listening on http://{addr}");
    eprintln!("endpoints: GET /healthz | GET /v1/stats | GET /v1/metrics | POST /v1/graphs | POST /v1/query | POST /v1/batch");
    server.run().map_err(|e| format!("server failed: {e}"))
}

/// `mintri atoms`: the decomposition the planning layer runs over —
/// connected components, clique-minimal-separator atoms (flagged
/// chordal/trivial when they need no enumeration) and the separators the
/// split used. Vertices are printed 1-based, matching the DIMACS-style
/// output of the other commands.
fn cmd_atoms(g: &Graph, output: Output) -> Result<(), String> {
    let d = atom_decomposition(g);
    let one_based =
        |s: &NodeSet| -> Vec<String> { s.iter().map(|v| (v + 1).to_string()).collect() };
    match output {
        Output::Text => {
            println!("components: {}", d.components.len());
            println!("atoms: {}", d.atoms.len());
            println!("clique separators: {}", d.separators.len());
            for a in &d.atoms {
                let (sub, _) = g.induced_subgraph(a);
                let kind = if is_chordal(&sub) {
                    "chordal"
                } else {
                    "enumerated"
                };
                println!("a [{}] {}", one_based(a).join(" "), kind);
            }
            for s in &d.separators {
                println!("s [{}]", one_based(s).join(" "));
            }
        }
        Output::Json => {
            let set_json = |s: &NodeSet| format!("[{}]", one_based(s).join(","));
            let sets_json = |ss: &[NodeSet]| {
                format!(
                    "[{}]",
                    ss.iter().map(set_json).collect::<Vec<_>>().join(",")
                )
            };
            let atoms: Vec<String> = d
                .atoms
                .iter()
                .map(|a| {
                    let (sub, _) = g.induced_subgraph(a);
                    format!(
                        "{{\"vertices\":{},\"chordal\":{}}}",
                        set_json(a),
                        is_chordal(&sub)
                    )
                })
                .collect();
            let mut doc = JsonObject::new();
            doc.str("command", "atoms");
            doc.raw("graph", graph_summary_json(g));
            doc.raw("components", sets_json(&d.components));
            doc.raw("atoms", format!("[{}]", atoms.join(",")));
            doc.raw("clique_separators", sets_json(&d.separators));
            println!("{}", doc.finish());
        }
    }
    Ok(())
}

fn cmd_stats(g: &Graph, output: Output) -> Result<(), String> {
    let cap = 10_000;
    let seps: Vec<_> = MinimalSeparatorIter::new(g).take(cap).collect();
    let truncated = seps.len() == cap;
    let chordal = is_chordal(g);
    match output {
        Output::Text => {
            println!("nodes: {}", g.num_nodes());
            println!("edges: {}", g.num_edges());
            println!("chordal: {chordal}");
            let more = if truncated { "+" } else { "" };
            println!("minimal separators: {}{}", seps.len(), more);
            if chordal {
                println!("treewidth: {}", treewidth_of_chordal(g));
            } else {
                let t = minimal_triangulation(g, &McsM);
                println!("mcs-m width (treewidth upper bound): {}", t.width());
                println!("mcs-m fill: {}", t.fill_count());
            }
        }
        Output::Json => {
            let mut doc = JsonObject::new();
            doc.str("command", "stats");
            doc.raw("graph", graph_summary_json(g));
            doc.bool("chordal", chordal);
            doc.usize("minimal_separators", seps.len());
            doc.bool("minimal_separators_truncated", truncated);
            if chordal {
                doc.usize("treewidth", treewidth_of_chordal(g));
            } else {
                let t = minimal_triangulation(g, &McsM);
                doc.usize("mcsm_width", t.width());
                doc.usize("mcsm_fill", t.fill_count());
            }
            println!("{}", doc.finish());
        }
    }
    Ok(())
}

fn cmd_triangulate(
    g: &Graph,
    flags: &HashMap<String, String>,
    output: Output,
) -> Result<(), String> {
    let t = pick_triangulator(flags)?;
    let tri = minimal_triangulation(g, t.as_ref());
    match output {
        Output::Text => {
            println!("c minimal triangulation by {}", t.name());
            println!("c width {} fill {}", tri.width(), tri.fill_count());
            for (u, v) in tri.fill {
                println!("f {} {}", u + 1, v + 1);
            }
        }
        Output::Json => {
            let mut doc = JsonObject::new();
            doc.str("command", "triangulate");
            doc.raw("graph", graph_summary_json(g));
            doc.str("algo", t.name());
            doc.usize("width", tri.width());
            doc.usize("fill_count", tri.fill_count());
            // 1-based endpoints, matching the DIMACS-style text output
            let fill: Vec<String> = tri
                .fill
                .iter()
                .map(|(u, v)| format!("[{},{}]", u + 1, v + 1))
                .collect();
            doc.raw("fill", format!("[{}]", fill.join(",")));
            println!("{}", doc.finish());
        }
    }
    Ok(())
}

fn cmd_enumerate(g: &Graph, flags: &HashMap<String, String>, output: Output) -> Result<(), String> {
    let query = build_query("enumerate", flags)?;
    let mut response = execute(query, g, flags)?;
    response.by_ref().for_each(drop);
    let outcome = response.outcome();
    match output {
        Output::Text => {
            println!("index,elapsed_us,width,fill");
            for r in &outcome.records {
                println!("{},{},{},{}", r.index, r.at.as_micros(), r.width, r.fill);
            }
            eprintln!(
                "{} minimal triangulations{}{} in {:.1} ms",
                outcome.records.len(),
                if outcome.completed { " (complete)" } else { "" },
                if outcome.replayed { " (replay)" } else { "" },
                outcome.elapsed.as_secs_f64() * 1e3
            );
        }
        Output::Json => {
            let results: Vec<String> = outcome
                .records
                .iter()
                .map(|r| {
                    format!(
                        "{{\"index\":{},\"elapsed_us\":{},\"width\":{},\"fill\":{}}}",
                        r.index,
                        r.at.as_micros(),
                        r.width,
                        r.fill
                    )
                })
                .collect();
            println!("{}", response_document("enumerate", g, &results, &outcome));
        }
    }
    print_trace(&outcome, output);
    print_explain(&outcome, flags, output);
    Ok(())
}

fn cmd_best_k(g: &Graph, flags: &HashMap<String, String>, output: Output) -> Result<(), String> {
    let by = flags.get("by").cloned().unwrap_or_else(|| "width".into());
    let query = build_query("best-k", flags)?;
    let mut response = execute(query, g, flags)?;
    let best = response.triangulations();
    let outcome = response.outcome();
    match output {
        Output::Text => {
            println!("rank,width,fill");
            for (i, t) in best.iter().enumerate() {
                println!("{},{},{}", i, t.width(), t.fill_count());
            }
            eprintln!(
                "{} best-{by} triangulations ({} scanned{})",
                best.len(),
                outcome.scanned,
                if outcome.replayed { ", replayed" } else { "" }
            );
        }
        Output::Json => {
            let results: Vec<String> = best
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    format!(
                        "{{\"rank\":{},\"width\":{},\"fill\":{}}}",
                        i,
                        t.width(),
                        t.fill_count()
                    )
                })
                .collect();
            println!("{}", response_document("best-k", g, &results, &outcome));
        }
    }
    print_trace(&outcome, output);
    print_explain(&outcome, flags, output);
    Ok(())
}

fn cmd_decompose(g: &Graph, flags: &HashMap<String, String>, output: Output) -> Result<(), String> {
    let query = build_query("decompose", flags)?;
    let mut response = execute(query, g, flags)?;
    match output {
        Output::Text => {
            let mut count = 0usize;
            for (i, item) in response.by_ref().enumerate() {
                let Some(d) = item.into_decomposition() else {
                    continue;
                };
                println!("d {} width {} bags {}", i, d.width(), d.num_bags());
                for bag in &d.bags {
                    let items: Vec<String> = bag.iter().map(|v| (v + 1).to_string()).collect();
                    println!("b {}", items.join(" "));
                }
                for (a, b) in &d.edges {
                    println!("t {} {}", a, b);
                }
                count += 1;
            }
            eprintln!("{count} proper tree decompositions printed");
            let outcome = response.outcome();
            print_trace(&outcome, output);
            print_explain(&outcome, flags, output);
        }
        Output::Json => {
            let ds = response.decompositions();
            let outcome = response.outcome();
            let results: Vec<String> = ds
                .iter()
                .map(|d| {
                    // 1-based vertices, matching the text output and the
                    // triangulate JSON; `edges` are 0-based bag indices.
                    let bags: Vec<String> = d
                        .bags
                        .iter()
                        .map(|bag| {
                            let items: Vec<String> =
                                bag.iter().map(|v| (v + 1).to_string()).collect();
                            format!("[{}]", items.join(","))
                        })
                        .collect();
                    let edges: Vec<String> =
                        d.edges.iter().map(|(a, b)| format!("[{a},{b}]")).collect();
                    format!(
                        "{{\"width\":{},\"bags\":[{}],\"edges\":[{}]}}",
                        d.width(),
                        bags.join(","),
                        edges.join(",")
                    )
                })
                .collect();
            println!("{}", response_document("decompose", g, &results, &outcome));
        }
    }
    Ok(())
}

// JSON rendering lives in `mintri_core::json` — shared verbatim with the
// HTTP transport and parsed back by the same module's `JsonValue::parse`,
// so nothing the CLI emits is write-only.
